//! The BT Strong Consistency (Def. 3.2) and BT Eventual Consistency
//! (Def. 3.4) criteria as conjunctions of the individual properties, plus a
//! classifier used by the Table-1 experiments.

use crate::criteria::{
    block_validity, eventual_prefix, ever_growing_tree, local_monotonic_read, strong_prefix,
    LivenessMode, Verdict,
};
use crate::history::History;
use crate::score::ScoreFn;
use crate::store::BlockStore;
use crate::validity::ValidityPredicate;
use std::fmt;

/// Everything the conjunction checkers need besides the history itself.
pub struct ConsistencyParams<'a> {
    /// Arena the history's block ids point into.
    pub store: &'a BlockStore,
    /// The validity predicate `P` of the BT-ADT instance.
    pub predicate: &'a dyn ValidityPredicate,
    /// The score function of the criteria.
    pub score: &'a dyn ScoreFn,
    /// Finite-trace semantics for the liveness clauses.
    pub liveness: LivenessMode,
}

/// Which criterion a report evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CriterionKind {
    /// BT Strong Consistency (Def. 3.2).
    Strong,
    /// BT Eventual Consistency (Def. 3.4).
    Eventual,
}

impl fmt::Display for CriterionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriterionKind::Strong => write!(f, "BT Strong Consistency"),
            CriterionKind::Eventual => write!(f, "BT Eventual Consistency"),
        }
    }
}

/// Per-property verdicts of one criterion check.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    pub criterion: CriterionKind,
    pub block_validity: Verdict,
    pub local_monotonic_read: Verdict,
    /// Present iff `criterion == Strong`.
    pub strong_prefix: Option<Verdict>,
    pub ever_growing_tree: Verdict,
    /// Present iff `criterion == Eventual`.
    pub eventual_prefix: Option<Verdict>,
}

impl ConsistencyReport {
    /// Did the conjunction hold?
    pub fn holds(&self) -> bool {
        self.block_validity.holds
            && self.local_monotonic_read.holds
            && self.strong_prefix.as_ref().is_none_or(|v| v.holds)
            && self.ever_growing_tree.holds
            && self.eventual_prefix.as_ref().is_none_or(|v| v.holds)
    }

    /// The verdicts present in this report, in definition order.
    pub fn verdicts(&self) -> Vec<&Verdict> {
        let mut out = vec![&self.block_validity, &self.local_monotonic_read];
        if let Some(v) = &self.strong_prefix {
            out.push(v);
        }
        out.push(&self.ever_growing_tree);
        if let Some(v) = &self.eventual_prefix {
            out.push(v);
        }
        out
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}",
            self.criterion,
            if self.holds() {
                "SATISFIED"
            } else {
                "VIOLATED"
            }
        )?;
        for v in self.verdicts() {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Checks the BT Strong Consistency criterion (Def. 3.2).
pub fn check_strong_consistency(history: &History, p: &ConsistencyParams<'_>) -> ConsistencyReport {
    ConsistencyReport {
        criterion: CriterionKind::Strong,
        block_validity: block_validity::check(history, p.store, p.predicate),
        local_monotonic_read: local_monotonic_read::check(history, p.score),
        strong_prefix: Some(strong_prefix::check(history)),
        ever_growing_tree: ever_growing_tree::check(history, p.score, p.liveness),
        eventual_prefix: None,
    }
}

/// Checks the BT Eventual Consistency criterion (Def. 3.4).
pub fn check_eventual_consistency(
    history: &History,
    p: &ConsistencyParams<'_>,
) -> ConsistencyReport {
    ConsistencyReport {
        criterion: CriterionKind::Eventual,
        block_validity: block_validity::check(history, p.store, p.predicate),
        local_monotonic_read: local_monotonic_read::check(history, p.score),
        strong_prefix: None,
        ever_growing_tree: ever_growing_tree::check(history, p.score, p.liveness),
        eventual_prefix: Some(eventual_prefix::check(history, p.score, p.liveness)),
    }
}

/// The strongest criterion a history satisfies. By Thm. 3.1 the classes
/// nest (`H_SC ⊂ H_EC`), so the classification is a three-point scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConsistencyClass {
    /// Satisfies neither criterion.
    Neither,
    /// Satisfies Eventual but not Strong consistency.
    Eventual,
    /// Satisfies Strong (hence also Eventual) consistency.
    Strong,
}

impl fmt::Display for ConsistencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyClass::Neither => write!(f, "neither"),
            ConsistencyClass::Eventual => write!(f, "EC"),
            ConsistencyClass::Strong => write!(f, "SC"),
        }
    }
}

/// Classifies a history on the SC / EC / Neither scale.
pub fn classify(history: &History, p: &ConsistencyParams<'_>) -> ConsistencyClass {
    if check_strong_consistency(history, p).holds() {
        ConsistencyClass::Strong
    } else if check_eventual_consistency(history, p).holds() {
        ConsistencyClass::Eventual
    } else {
        ConsistencyClass::Neither
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::history::{Invocation, Response};
    use crate::ids::{BlockId, ProcessId, Time};
    use crate::score::LengthScore;
    use crate::validity::AcceptAll;

    /// Store with a fork: b0 → 1 → 3 → 5 and b0 → 2 → 4 → 6,
    /// mirroring the odd/even branches the paper's Figs. 3–4 draw.
    struct Fixture {
        store: BlockStore,
        odd: Vec<BlockId>,  // [b0, 1, 3, 5]
        even: Vec<BlockId>, // [b0, 2, 4, 6]
    }

    fn fixture() -> Fixture {
        use crate::block::Payload;
        let mut store = BlockStore::new();
        let mut odd = vec![BlockId::GENESIS];
        let mut even = vec![BlockId::GENESIS];
        let mut p_odd = BlockId::GENESIS;
        let mut p_even = BlockId::GENESIS;
        for i in 0..3 {
            p_odd = store.mint(p_odd, ProcessId(1), 1, 1, 100 + i, Payload::Empty);
            odd.push(p_odd);
            p_even = store.mint(p_even, ProcessId(0), 0, 1, 200 + i, Payload::Empty);
            even.push(p_even);
        }
        Fixture { store, odd, even }
    }

    fn chain_of(ids: &[BlockId], n: usize) -> Blockchain {
        Blockchain::from_ids(ids[..n].to_vec())
    }

    fn read(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t1),
        );
    }

    fn append(h: &mut History, b: BlockId, t: u64) {
        h.push_complete(
            ProcessId(5),
            Invocation::Append { block: b },
            Time(t),
            Response::Appended(true),
            Time(t + 1),
        );
    }

    fn append_all(h: &mut History, fx: &Fixture) {
        for (i, &b) in fx.odd.iter().skip(1).enumerate() {
            append(h, b, i as u64);
        }
        for (i, &b) in fx.even.iter().skip(1).enumerate() {
            append(h, b, i as u64);
        }
    }

    fn params<'a>(fx: &'a Fixture, cut: u64) -> ConsistencyParams<'a> {
        ConsistencyParams {
            store: &fx.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(Time(cut)),
        }
    }

    /// A linear (forkless) history: SC holds, hence EC holds (Thm. 3.1).
    #[test]
    fn strong_history_is_also_eventual() {
        let fx = fixture();
        let mut h = History::new();
        append_all(&mut h, &fx);
        read(&mut h, 0, 10, 11, chain_of(&fx.odd, 2));
        read(&mut h, 1, 12, 13, chain_of(&fx.odd, 3));
        read(&mut h, 0, 30, 31, chain_of(&fx.odd, 4));
        read(&mut h, 1, 32, 33, chain_of(&fx.odd, 4));
        let p = params(&fx, 20);
        let sc = check_strong_consistency(&h, &p);
        let ec = check_eventual_consistency(&h, &p);
        assert!(sc.holds(), "{sc}");
        assert!(ec.holds(), "{ec}");
        assert_eq!(classify(&h, &p), ConsistencyClass::Strong);
    }

    /// Fig. 3-shaped history: EC holds, SC does not (the EC∖SC witness of
    /// Thm. 3.1).
    #[test]
    fn eventual_but_not_strong() {
        let fx = fixture();
        let mut h = History::new();
        append_all(&mut h, &fx);
        // Early divergence…
        read(&mut h, 0, 10, 11, chain_of(&fx.even, 3)); // b0·2·4 (score 2)
        read(&mut h, 1, 12, 13, chain_of(&fx.odd, 2)); // b0·1   (score 1)
                                                       // …then everybody adopts the odd branch and keeps growing.
        read(&mut h, 0, 30, 31, chain_of(&fx.odd, 4));
        read(&mut h, 1, 32, 33, chain_of(&fx.odd, 4));
        let p = params(&fx, 20);
        assert!(!check_strong_consistency(&h, &p).holds());
        let ec = check_eventual_consistency(&h, &p);
        assert!(ec.holds(), "{ec}");
        assert_eq!(classify(&h, &p), ConsistencyClass::Eventual);
    }

    /// Fig. 4-shaped history: the branches never converge — neither
    /// criterion holds.
    #[test]
    fn neither_criterion() {
        let fx = fixture();
        let mut h = History::new();
        append_all(&mut h, &fx);
        read(&mut h, 0, 10, 11, chain_of(&fx.even, 3));
        read(&mut h, 1, 12, 13, chain_of(&fx.odd, 3));
        read(&mut h, 0, 30, 31, chain_of(&fx.even, 4));
        read(&mut h, 1, 32, 33, chain_of(&fx.odd, 4));
        let p = params(&fx, 20);
        assert!(!check_strong_consistency(&h, &p).holds());
        assert!(!check_eventual_consistency(&h, &p).holds());
        assert_eq!(classify(&h, &p), ConsistencyClass::Neither);
    }

    #[test]
    fn report_display_lists_properties() {
        let fx = fixture();
        let mut h = History::new();
        append_all(&mut h, &fx);
        read(&mut h, 0, 10, 11, chain_of(&fx.odd, 2));
        read(&mut h, 0, 30, 31, chain_of(&fx.odd, 3));
        let p = params(&fx, 20);
        let sc = check_strong_consistency(&h, &p);
        let text = format!("{sc}");
        assert!(text.contains("block-validity"));
        assert!(text.contains("strong-prefix"));
        assert!(text.contains("ever-growing-tree"));
        assert!(!text.contains("eventual-prefix"));
    }

    #[test]
    fn class_ordering() {
        assert!(ConsistencyClass::Strong > ConsistencyClass::Eventual);
        assert!(ConsistencyClass::Eventual > ConsistencyClass::Neither);
    }
}
