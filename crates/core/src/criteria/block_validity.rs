//! Block Validity (Def. 3.2, first clause).
//!
//! Every block of every chain returned by a `read()` must (i) satisfy the
//! validity predicate `P` (i.e. be in `B'`) and (ii) have been submitted to
//! the tree by an `append` whose *invocation* precedes the read's
//! *response* in program order: `∃ einv(append(b)) ր ersp(r)`.
//!
//! The genesis block is exempt: `b0 ∈ B'` by assumption and exists without
//! an append.

use crate::criteria::{Verdict, Violation};
use crate::history::{History, Invocation, Response};
use crate::ids::{BlockId, Time};
use crate::store::BlockStore;
use crate::validity::ValidityPredicate;
use std::collections::HashMap;

pub const PROPERTY: &str = "block-validity";

/// Checks Block Validity of `history` against the predicate and the store
/// the blocks live in.
pub fn check(history: &History, store: &BlockStore, predicate: &dyn ValidityPredicate) -> Verdict {
    // Earliest append invocation per block.
    let mut first_append: HashMap<BlockId, Time> = HashMap::new();
    for op in history.appends() {
        if let Invocation::Append { block } = op.invocation {
            let t = first_append.entry(block).or_insert(op.invoked_at);
            if op.invoked_at < *t {
                *t = op.invoked_at;
            }
        }
    }

    let mut violations = Vec::new();
    for read in history.reads() {
        let chain = match &read.response {
            Some(Response::Chain(c)) => c,
            _ => continue,
        };
        let responded = read.responded_at.expect("completed read");
        for &b in chain.ids() {
            if b.is_genesis() {
                continue;
            }
            match store.try_get(b) {
                Some(block) if predicate.is_valid(store, block) => {}
                _ => {
                    violations.push(Violation::InvalidBlock {
                        read: read.id,
                        block: b,
                    });
                    continue;
                }
            }
            match first_append.get(&b) {
                Some(&t_inv) if t_inv < responded => {}
                _ => violations.push(Violation::UnappendedBlock {
                    read: read.id,
                    block: b,
                }),
            }
        }
    }
    Verdict::from_violations(PROPERTY, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::chain::Blockchain;
    use crate::ids::ProcessId;
    use crate::validity::{AcceptAll, RejectAll};

    fn setup() -> (BlockStore, BlockId, BlockId) {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        (s, a, b)
    }

    fn append_at(h: &mut History, block: BlockId, t0: u64, t1: u64) {
        h.push_complete(
            ProcessId(9),
            Invocation::Append { block },
            Time(t0),
            Response::Appended(true),
            Time(t1),
        );
    }

    fn read_at(h: &mut History, t0: u64, t1: u64, chain: Blockchain) {
        h.push_complete(
            ProcessId(0),
            Invocation::Read,
            Time(t0),
            Response::Chain(chain),
            Time(t1),
        );
    }

    #[test]
    fn valid_appended_blocks_pass() {
        let (s, a, b) = setup();
        let mut h = History::new();
        append_at(&mut h, a, 0, 1);
        append_at(&mut h, b, 2, 3);
        read_at(&mut h, 4, 5, Blockchain::from_tip(&s, b));
        let v = check(&h, &s, &AcceptAll);
        assert!(v.holds, "{v}");
    }

    #[test]
    fn genesis_only_read_needs_no_append() {
        let (s, ..) = setup();
        let mut h = History::new();
        read_at(&mut h, 0, 1, Blockchain::genesis());
        assert!(check(&h, &s, &RejectAll).holds);
    }

    #[test]
    fn invalid_block_detected() {
        let (s, a, _) = setup();
        let mut h = History::new();
        append_at(&mut h, a, 0, 1);
        read_at(&mut h, 2, 3, Blockchain::from_tip(&s, a));
        let v = check(&h, &s, &RejectAll);
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::InvalidBlock { block, .. } if block == a
        ));
    }

    #[test]
    fn unappended_block_detected() {
        let (s, a, _) = setup();
        let mut h = History::new();
        read_at(&mut h, 2, 3, Blockchain::from_tip(&s, a));
        let v = check(&h, &s, &AcceptAll);
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::UnappendedBlock { block, .. } if block == a
        ));
    }

    #[test]
    fn append_after_read_response_is_a_violation() {
        let (s, a, _) = setup();
        let mut h = History::new();
        // Read responds at t=3, append invoked at t=5: not einv ր ersp.
        read_at(&mut h, 2, 3, Blockchain::from_tip(&s, a));
        append_at(&mut h, a, 5, 6);
        let v = check(&h, &s, &AcceptAll);
        assert!(!v.holds);
    }

    #[test]
    fn append_invocation_suffices_even_if_pending() {
        let (s, a, _) = setup();
        let mut h = History::new();
        // Pending append (no response) still provides einv.
        h.push_invocation(ProcessId(1), Invocation::Append { block: a }, Time(0));
        read_at(&mut h, 2, 3, Blockchain::from_tip(&s, a));
        assert!(check(&h, &s, &AcceptAll).holds);
    }

    #[test]
    fn unknown_block_id_reported_not_panicking() {
        let (s, ..) = setup();
        let mut h = History::new();
        let phantom = BlockId(999);
        read_at(
            &mut h,
            0,
            1,
            Blockchain::from_ids(vec![BlockId::GENESIS, phantom]),
        );
        let v = check(&h, &s, &AcceptAll);
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::InvalidBlock { block, .. } if block == phantom
        ));
    }
}
