//! Validity predicates `P : B → {true, false}` (§3.1).
//!
//! "Blocks are said valid if they satisfy a predicate P which is application
//! dependent (for instance, in Bitcoin, a block is considered valid if it can
//! be connected to the current blockchain and does not contain transactions
//! that double spend a previous transaction)."
//!
//! The predicate is a parameter of the BT-ADT, encoded in the state and
//! immutable over the computation. The paper's Bitcoin example is
//! implemented as [`NoDoubleSpend`]; proof-of-work-style digest conditions
//! as [`DigestPrefix`].

use crate::block::{Block, Payload};
use crate::store::BlockView;
use std::collections::HashSet;

/// The application-dependent predicate `P`.
///
/// Receives the candidate block *and* the store (validity may depend on the
/// chain the block connects to, as in the double-spend example). The store
/// comes in as a [`BlockView`] so the same predicate gates appends on the
/// sequential `BlockTree` and the lock-sharded
/// [`ConcurrentBlockTree`](crate::concurrent::ConcurrentBlockTree).
pub trait ValidityPredicate: Sync {
    /// Is `block` in `B'`?
    fn is_valid(&self, store: &dyn BlockView, block: &Block) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// `P ≡ true`: every block is valid. The default for structural experiments
/// where the oracle alone gates appends.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAll;

impl ValidityPredicate for AcceptAll {
    fn is_valid(&self, _store: &dyn BlockView, _block: &Block) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "accept-all"
    }
}

/// `P ≡ false` for every non-genesis block: used to exercise the
/// `append(b)/false` edges of the transition system (Fig. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct RejectAll;

impl ValidityPredicate for RejectAll {
    fn is_valid(&self, _store: &dyn BlockView, block: &Block) -> bool {
        block.is_genesis()
    }

    fn name(&self) -> &'static str {
        "reject-all"
    }
}

/// Proof-of-work-flavoured validity: the block digest must have at least
/// `zero_bits` leading zero bits. Models the "hash below target" condition
/// without doing any actual search — token oracles already abstract the
/// lottery (§3.2), so this predicate is used when we want `P` itself to be
/// non-trivial.
#[derive(Clone, Copy, Debug)]
pub struct DigestPrefix {
    pub zero_bits: u32,
}

impl ValidityPredicate for DigestPrefix {
    fn is_valid(&self, _store: &dyn BlockView, block: &Block) -> bool {
        block.is_genesis() || block.digest.leading_zeros() >= self.zero_bits
    }

    fn name(&self) -> &'static str {
        "digest-prefix"
    }
}

/// The paper's Bitcoin example: a block is valid iff it connects to the tree
/// and none of its transactions re-spends a transaction id already spent on
/// its ancestor path (nor duplicates one inside the block itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDoubleSpend;

impl ValidityPredicate for NoDoubleSpend {
    fn is_valid(&self, store: &dyn BlockView, block: &Block) -> bool {
        if block.is_genesis() {
            return true;
        }
        let txs = match &block.payload {
            Payload::Transactions(txs) => txs,
            // Non-transactional payloads have nothing to double spend.
            _ => return true,
        };
        let mut ids: HashSet<u64> = HashSet::with_capacity(txs.len());
        for tx in txs {
            if !ids.insert(tx.id) {
                return false; // duplicate within the block
            }
        }
        // Walk the ancestor chain the block connects to.
        let mut cur = block.parent;
        while let Some(pid) = cur {
            let mut respent = false;
            let mut next = None;
            store.with_block(pid, &mut |anc| {
                if let Payload::Transactions(prev) = &anc.payload {
                    respent |= prev.iter().any(|tx| ids.contains(&tx.id));
                }
                next = anc.parent;
            });
            if respent {
                return false; // re-spend of an ancestor's tx
            }
            cur = next;
        }
        true
    }

    fn name(&self) -> &'static str {
        "no-double-spend"
    }
}

/// Conjunction combinator: valid iff both operands accept.
pub struct And<A, B>(pub A, pub B);

impl<A: ValidityPredicate, B: ValidityPredicate> ValidityPredicate for And<A, B> {
    fn is_valid(&self, store: &dyn BlockView, block: &Block) -> bool {
        self.0.is_valid(store, block) && self.1.is_valid(store, block)
    }

    fn name(&self) -> &'static str {
        "and"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Tx;
    use crate::ids::{BlockId, ProcessId};
    use crate::store::BlockStore;

    fn mint_with_txs(store: &mut BlockStore, parent: BlockId, txs: Vec<Tx>) -> BlockId {
        store.mint(
            parent,
            ProcessId(0),
            0,
            1,
            store.len() as u64,
            Payload::Transactions(txs),
        )
    }

    #[test]
    fn accept_and_reject() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let blk = s.get(a).clone();
        assert!(AcceptAll.is_valid(&s, &blk));
        assert!(!RejectAll.is_valid(&s, &blk));
        let genesis = s.get(BlockId::GENESIS).clone();
        assert!(RejectAll.is_valid(&s, &genesis), "b0 ∈ B' by assumption");
    }

    #[test]
    fn digest_prefix_threshold() {
        let mut s = BlockStore::new();
        // Mint until we find digests on both sides of a 2-bit threshold.
        let mut some_valid = false;
        let mut some_invalid = false;
        for nonce in 0..64 {
            let id = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, nonce, Payload::Empty);
            let blk = s.get(id).clone();
            let p = DigestPrefix { zero_bits: 2 };
            if p.is_valid(&s, &blk) {
                some_valid = true;
                assert!(blk.digest.leading_zeros() >= 2);
            } else {
                some_invalid = true;
            }
        }
        assert!(some_valid && some_invalid, "both outcomes exercised");
    }

    #[test]
    fn double_spend_within_block() {
        let mut s = BlockStore::new();
        let b = mint_with_txs(
            &mut s,
            BlockId::GENESIS,
            vec![Tx::new(1, 0, 1, 5), Tx::new(1, 0, 2, 5)],
        );
        let blk = s.get(b).clone();
        assert!(!NoDoubleSpend.is_valid(&s, &blk));
    }

    #[test]
    fn double_spend_against_ancestor() {
        let mut s = BlockStore::new();
        let a = mint_with_txs(&mut s, BlockId::GENESIS, vec![Tx::new(1, 0, 1, 5)]);
        let b = mint_with_txs(&mut s, a, vec![Tx::new(1, 0, 2, 5)]);
        let blk = s.get(b).clone();
        assert!(!NoDoubleSpend.is_valid(&s, &blk));
    }

    #[test]
    fn fresh_txs_are_valid() {
        let mut s = BlockStore::new();
        let a = mint_with_txs(&mut s, BlockId::GENESIS, vec![Tx::new(1, 0, 1, 5)]);
        let b = mint_with_txs(&mut s, a, vec![Tx::new(2, 1, 2, 3)]);
        let blk = s.get(b).clone();
        assert!(NoDoubleSpend.is_valid(&s, &blk));
    }

    #[test]
    fn double_spend_on_other_branch_is_fine() {
        // Spending the same tx id on two *different* branches is not a
        // double spend: validity checks the ancestor path only.
        let mut s = BlockStore::new();
        let a = mint_with_txs(&mut s, BlockId::GENESIS, vec![Tx::new(1, 0, 1, 5)]);
        let b = mint_with_txs(&mut s, BlockId::GENESIS, vec![Tx::new(1, 0, 2, 5)]);
        assert!(NoDoubleSpend.is_valid(&s, &s.get(a).clone()));
        assert!(NoDoubleSpend.is_valid(&s, &s.get(b).clone()));
    }

    #[test]
    fn and_combinator() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let blk = s.get(a).clone();
        assert!(And(AcceptAll, AcceptAll).is_valid(&s, &blk));
        assert!(!And(AcceptAll, RejectAll).is_valid(&s, &blk));
        assert!(!And(RejectAll, AcceptAll).is_valid(&s, &blk));
    }
}
