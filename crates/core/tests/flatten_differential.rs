//! Differential and churn coverage for the two-tier (flattened) arena.
//!
//! Flattening is a *storage* transform: moving the finalized prefix into
//! the slab tier must never change a single answer any `BlockView` read
//! gives. The suite checks that from the outside three ways:
//!
//! 1. mirror a fork-heavy workload into a flatten-capable store (with a
//!    ragged flatten cadence mid-run) and a plain store, then demand
//!    bit-identical `meta`/`block`/children/ancestry answers across 20
//!    seeds;
//! 2. churn: concurrent deep-walking readers — plus one reader that parks
//!    an epoch pin — while a writer grows the chain and the flattener
//!    retires spine chunks under them (the epoch-safety contract);
//! 3. a deep tree driven through the full `ConcurrentBlockTree` commit
//!    pipeline with a small watermark, checked for end-to-end consistency.

use btadt_core::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Deterministic split-mix style generator (no external dependency).
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn children_of(store: &dyn BlockView, id: BlockId) -> Vec<BlockId> {
    let mut kids = Vec::new();
    store.for_each_child(id, &mut |c| kids.push(c));
    kids
}

#[test]
fn flattened_reads_match_plain_store_across_seeds() {
    for seed0 in 0..20u64 {
        let mut seed = seed0.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
        let flat = ShardedStore::with_flattening(4);
        let plain = ShardedStore::with_shards(4);
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..300u64 {
            let r = lcg(&mut seed);
            // Fork-heavy: a quarter of mints branch off a random block.
            let parent = if r.is_multiple_of(4) {
                ids[(lcg(&mut seed) as usize) % ids.len()]
            } else {
                *ids.last().unwrap()
            };
            let payload = match r % 3 {
                0 => Payload::Empty,
                1 => Payload::Opaque(r),
                _ => Payload::Transactions(vec![Tx::new(
                    r,
                    (r % 7) as u32,
                    (r % 11) as u32,
                    r % 1000,
                )]),
            };
            let producer = ProcessId((r % 5) as u32);
            let work = 1 + r % 5;
            let a = flat.mint(parent, producer, (r % 4) as u32, work, i, payload.clone());
            let b = plain.mint(parent, producer, (r % 4) as u32, work, i, payload);
            assert_eq!(a, b, "mirrored mints agree on ids");
            ids.push(a);
            // Ragged flatten cadence: raise the bound and spend partial
            // budgets mid-run, so reads cross every possible frontier.
            if i % 37 == 0 {
                flat.raise_flatten_target((flat.block_count() as u32).saturating_sub(10));
            }
            if i % 11 == 0 {
                flat.flatten_some((lcg(&mut seed) % 40) as usize);
            }
        }
        flat.raise_flatten_target(flat.block_count() as u32 - 3);
        while flat.flatten_some(64) > 0 {}
        assert!(
            flat.flattened_count() >= flat.block_count() as u32 - 13,
            "most of the arena is flat"
        );

        for &id in &ids {
            assert_eq!(flat.meta(id), plain.meta(id), "meta of {id}");
            assert_eq!(flat.block(id), plain.block(id), "block of {id}");
            assert_eq!(
                children_of(&flat, id),
                children_of(&plain, id),
                "children of {id}"
            );
        }
        let n = ids.len();
        for _ in 0..200 {
            let a = ids[(lcg(&mut seed) as usize) % n];
            let b = ids[(lcg(&mut seed) as usize) % n];
            assert_eq!(flat.is_ancestor(a, b), plain.is_ancestor(a, b));
            assert_eq!(flat.common_ancestor(a, b), plain.common_ancestor(a, b));
            let cut = (lcg(&mut seed) % (flat.height(a) as u64 + 1)) as u32;
            assert_eq!(flat.ancestor_at(a, cut), plain.ancestor_at(a, cut));
            assert_eq!(flat.path_from_genesis(a), plain.path_from_genesis(a));
        }

        // Flatten *everything*, then keep minting: children of flattened
        // parents land in the late-kids table and must stay invisible to
        // the differential.
        flat.raise_flatten_target(flat.block_count() as u32);
        while flat.flatten_some(64) > 0 {}
        assert_eq!(flat.flattened_count(), flat.block_count() as u32);
        for j in 0..20u64 {
            let parent = ids[(lcg(&mut seed) as usize) % n];
            let a = flat.mint(parent, ProcessId(9), 0, 2, 1000 + j, Payload::Empty);
            let b = plain.mint(parent, ProcessId(9), 0, 2, 1000 + j, Payload::Empty);
            assert_eq!(a, b);
            assert_eq!(
                children_of(&flat, parent),
                children_of(&plain, parent),
                "late children preserve minting order under {parent}"
            );
            assert_eq!(flat.meta(a), plain.meta(a));
        }
    }
}

#[test]
fn readers_pinned_across_chunk_retirement_stay_safe() {
    const BLOCKS: u64 = 30_000;
    let store = ShardedStore::with_flattening(2);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let store_ref = &store;
        let stop_ref = &stop;
        // Writer + flattener: grow a deep chain, trailing the watermark
        // behind the tip so chunk retirement happens throughout the run.
        s.spawn(move || {
            let mut prev = BlockId::GENESIS;
            for i in 0..BLOCKS {
                prev = store_ref.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
                if i % 64 == 0 {
                    store_ref.raise_flatten_target((i as u32).saturating_sub(100));
                    store_ref.flatten_some(128);
                }
            }
            store_ref.raise_flatten_target(store_ref.block_count() as u32 - 1);
            while store_ref.flatten_some(256) > 0 {}
            stop_ref.store(true, Ordering::Release);
        });
        // Deep-walking readers race the flattener across the tier
        // boundary the whole run.
        for t in 0..3u64 {
            s.spawn(move || {
                let mut seed = 0xBEEF + t;
                while !stop_ref.load(Ordering::Acquire) {
                    let n = store_ref.block_count() as u64;
                    let a = BlockId((lcg(&mut seed) % n) as u32);
                    if !store_ref.has_block(a) {
                        continue;
                    }
                    let h = store_ref.height(a);
                    let anc = store_ref.ancestor_at(a, h / 2);
                    assert_eq!(store_ref.height(anc), h / 2);
                    assert!(store_ref.is_ancestor(anc, a));
                }
            });
        }
        // One reader parks a pin across many retirements: chunks retired
        // while it is pinned must not be freed under it (the walks above
        // would fault), only deferred.
        s.spawn(move || {
            while !stop_ref.load(Ordering::Acquire) {
                let _guard = store_ref.reclaim_domain().pin();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });
    // Quiescent: every retired chunk drains once the pins are gone.
    let dom = store.reclaim_domain();
    dom.reclaim_quiescent();
    assert_eq!(
        dom.pending_items(),
        0,
        "no chunk garbage survives quiescence"
    );
    assert_eq!(dom.retired_bytes(), 0);
    assert!(dom.reclaimed_items() > 0, "chunks were retired and freed");
    // And the arena still answers exactly.
    let tip = BlockId(store.block_count() as u32 - 1);
    assert_eq!(store.height(tip), BLOCKS as u32);
    assert_eq!(store.ancestor_at(tip, 0), BlockId::GENESIS);
    assert_eq!(store.flattened_count(), store.block_count() as u32 - 1);
}

/// Regression stress for the tier-check-vs-retirement race: a reader
/// that loads a stale `flat.count` (id looks unflattened) and then hits
/// a spine chunk the flattener just retired must re-route to the slab,
/// not panic "half-minted" or report an existing block absent. Readers
/// and a forking minter hammer ids *at the flatten frontier* — exactly
/// where chunks retire — while the flattener advances in tiny steps to
/// maximize frontier crossings; `mint_checked`'s parent read takes the
/// same fallback when its parent flattens mid-mint.
#[test]
fn frontier_reads_race_chunk_retirement() {
    const BLOCKS: u64 = 20_000;
    let store = ShardedStore::with_flattening(2);
    let stop = AtomicBool::new(false);
    let tip = std::thread::scope(|s| {
        let store_ref = &store;
        let stop_ref = &stop;
        // Writer + flattener: the target trails the tip by a hair and
        // the budget is tiny, so the frontier (and chunk retirement)
        // moves constantly instead of in rare big hops.
        let writer = s.spawn(move || {
            let mut prev = BlockId::GENESIS;
            for i in 0..BLOCKS {
                prev = store_ref.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
                store_ref.raise_flatten_target((i as u32).saturating_sub(8));
                store_ref.flatten_some(16);
            }
            stop_ref.store(true, Ordering::Release);
            prev
        });
        // Frontier readers: probe ids right at the flattened count,
        // where the is_flat/spine-read window races retirement.
        for t in 0..2u64 {
            s.spawn(move || {
                let mut seed = 0xF00D + t;
                while !stop_ref.load(Ordering::Acquire) {
                    let fc = store_ref.flattened_count() as u64;
                    let n = store_ref.block_count() as u64;
                    let id = BlockId((fc + lcg(&mut seed) % 8).min(n - 1) as u32);
                    if !store_ref.has_block(id) {
                        continue;
                    }
                    // Ids below the frontier we synchronized with must
                    // never look absent, whatever tier they sit in.
                    if (id.0 as u64) < fc {
                        assert!(store_ref.has_block(id), "flat id reported missing");
                    }
                    let m = store_ref.meta(id);
                    store_ref.with_block(id, &mut |b| {
                        assert_eq!(b.id, id);
                        assert_eq!(b.height, m.height);
                    });
                    let h = store_ref.height(id);
                    if h > 0 {
                        let anc = store_ref.ancestor_at(id, h - 1);
                        assert_eq!(store_ref.height(anc), h - 1);
                        assert!(store_ref.is_ancestor(anc, id));
                    }
                }
            });
        }
        // Forking minter under frontier parents: the parent's spine
        // entry may retire between the mint's tier check and read,
        // forcing the slab fallback; the children also land in frozen
        // lists via the late-kids table.
        s.spawn(move || {
            let mut seed = 0xFEED;
            let mut nonce = 1_000_000u64;
            while !stop_ref.load(Ordering::Acquire) {
                let fc = store_ref.flattened_count() as u64;
                if fc < 2 {
                    std::thread::yield_now();
                    continue;
                }
                let parent = BlockId((fc - 1 + lcg(&mut seed) % 4) as u32);
                if !store_ref.has_block(parent) {
                    continue;
                }
                nonce += 1;
                let kid = store_ref.mint(parent, ProcessId(9), 0, 1, nonce, Payload::Empty);
                assert_eq!(store_ref.parent(kid), Some(parent));
                assert_eq!(store_ref.height(kid), store_ref.height(parent) + 1);
            }
        });
        writer.join().unwrap()
    });
    // Quiescent end-to-end check: the main chain is intact and every
    // child list is in ascending-id order across both tiers.
    assert_eq!(store.height(tip), BLOCKS as u32);
    assert_eq!(store.ancestor_at(tip, 0), BlockId::GENESIS);
    let snap = store.snapshot();
    assert_eq!(snap.len(), store.block_count());
    for raw in 0..store.block_count() as u32 {
        let kids = children_of(&store, BlockId(raw));
        assert!(kids.windows(2).all(|w| w[0] < w[1]), "sorted children");
    }
}

#[test]
fn deep_tree_with_small_watermark_stays_consistent() {
    let bt =
        ConcurrentBlockTree::with_config(4, FinalityWatermark::new(8), LongestChain, AcceptAll);
    for i in 0..2000u64 {
        bt.append(CandidateBlock::simple(ProcessId((i % 3) as u32), i))
            .unwrap();
    }
    let chain = bt.read_owned();
    assert_eq!(chain.len(), 2001);
    assert!(bt.store().flattened_count() > 0, "the flattener ran");
    let ids = chain.ids();
    let tip = *ids.last().unwrap();
    for (h, &id) in ids.iter().enumerate().step_by(97) {
        assert_eq!(bt.store().height(id), h as u32);
        assert_eq!(bt.store().ancestor_at(tip, h as u32), id);
    }
    let snap = bt.snapshot_store();
    assert_eq!(snap.block_count(), bt.store().block_count());
    assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
}
