//! Model-checked concurrency suites for the commit pipeline's core
//! protocols. Build-gated: these only compile (and only make sense)
//! when the whole dep graph is built with the model cfg, which routes
//! `btadt_core::sync` through the instrumented primitives:
//!
//! ```text
//! RUSTFLAGS="--cfg btadt_model" cargo test -p btadt-core --test modelcheck_suites --release
//! ```
//!
//! Each target explores *every* interleaving within a preemption bound
//! and asserts an exploration certificate: exhaustive (`complete`) and
//! at least [`MIN_SCHEDULES`] distinct schedules, replayable from the
//! printed seed. Alongside each protocol target sits a *mutation*
//! target: the same kernel with the protocol's load-bearing line broken
//! the way a plausible refactor would break it, asserting the explorer
//! finds the bug and that the failing schedule replays deterministically
//! — the smoke test that the tool bites.
//!
//! The kernels for suites 2–4 mirror `concurrent.rs` line-for-line in
//! miniature (same lock split, same counters, same orderings) rather
//! than driving the full `ConcurrentBlockTree`, whose arena and scoring
//! machinery would multiply schedule points without adding
//! interleavings of the protocol under test. Suite 1 drives the real
//! `EpochDomain`.

#![cfg(btadt_model)]

use btadt_core::epoch::{EpochDomain, GRACE_EPOCHS};
use btadt_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use btadt_core::sync::{thread, Condvar, Mutex};
use btadt_modelcheck::{explore, replay, timeouts_fired, Config, FailureKind, Report};
use std::sync::Arc;

/// Floor on distinct schedules per certified target — the "this was a
/// real exploration, not three lucky runs" bar from the PR acceptance.
const MIN_SCHEDULES: usize = 10_000;

/// Asserts the positive-target certificate and prints it (the printed
/// seed is what a developer pins to reproduce the enumeration order).
fn certify(report: &Report) {
    println!("{report}");
    if let Some(f) = &report.failure {
        panic!("{}: counterexample found: {}", report.name, f);
    }
    assert!(
        report.complete,
        "{}: exploration hit its schedule budget before exhausting the \
         preemption bound — raise max_schedules or shrink the kernel",
        report.name
    );
    assert!(
        report.schedules >= MIN_SCHEDULES,
        "{}: only {} schedules explored (< {MIN_SCHEDULES}); the kernel \
         no longer exercises enough interleavings to certify anything",
        report.name,
        report.schedules
    );
}

/// Asserts a mutation target bit: the explorer found a failure of the
/// expected kind and the failing schedule replays deterministically.
fn certify_bite<F>(report: &Report, want: &FailureKind, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    println!("{report}");
    let failure = report.failure.as_ref().unwrap_or_else(|| {
        panic!(
            "{}: mutant survived {} schedules",
            report.name, report.schedules
        )
    });
    assert_eq!(
        std::mem::discriminant(&failure.kind),
        std::mem::discriminant(want),
        "{}: wrong failure kind: {failure}",
        report.name
    );
    let replayed = replay(&report.name, failure.schedule.clone(), body).unwrap_or_else(|| {
        panic!(
            "{}: failing schedule did not replay: {failure}",
            report.name
        )
    });
    assert_eq!(
        std::mem::discriminant(&replayed.kind),
        std::mem::discriminant(want),
        "{}: replay reproduced a different failure: {replayed}",
        report.name
    );
}

// =====================================================================
// Suite 1: epoch pin / advance / retire — the grace period is honored.
// =====================================================================

const LIVE: u64 = 0xA11FE;
const FREED: u64 = 0xF4EED;

/// Two readers and one retirer against the *real* `EpochDomain`: a cell
/// is unlinked, its "free" (a poison store) deferred, and the domain
/// swept a full grace period. A reader that pinned and still saw the
/// cell linked must never observe the poison — no bag may be freed with
/// fewer than [`GRACE_EPOCHS`] epochs of grace past a live pin. After
/// all threads quiesce, the deferred free must actually have run.
fn epoch_grace_body() {
    btadt_core::epoch::reset_slot_hint_seed();
    let dom = Arc::new(EpochDomain::with_config(2, 0));
    let cell = Arc::new(AtomicU64::new(LIVE));
    let linked = Arc::new(AtomicUsize::new(1));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (dom, cell, linked) = (dom.clone(), cell.clone(), linked.clone());
            thread::spawn(move || {
                let guard = dom.pin();
                if linked.load(Ordering::SeqCst) == 1 {
                    // relaxed-free window: the unlink is not yet visible,
                    // so the grace period must still cover this load.
                    assert_eq!(
                        cell.load(Ordering::SeqCst),
                        LIVE,
                        "cell freed under a pin that saw it linked"
                    );
                }
                drop(guard);
            })
        })
        .collect();

    let retirer = {
        let (dom, cell, linked) = (dom.clone(), cell.clone(), linked.clone());
        thread::spawn(move || {
            linked.store(0, Ordering::SeqCst);
            let poison = cell.clone();
            dom.defer(0, move || poison.store(FREED, Ordering::SeqCst));
            for _ in 0..=GRACE_EPOCHS {
                dom.try_reclaim();
            }
        })
    };

    for r in readers {
        r.join();
    }
    retirer.join();
    // Quiescent now: a full sweep must free the deferred item — the
    // liveness half (grace delays reclamation, never loses it).
    dom.reclaim_quiescent();
    assert_eq!(
        cell.load(Ordering::SeqCst),
        FREED,
        "deferred free lost after quiescence"
    );
}

#[test]
fn epoch_grace_protects_pinned_readers() {
    let report = explore(Config::new("epoch-grace").preemptions(2), epoch_grace_body);
    certify(&report);
}

/// Mutation: a miniature EBR whose reclaimer honors a configurable
/// grace. At the real grace (2) it is clean; with the grace window
/// removed the explorer must find a reader holding a pin across the
/// free — the freed-while-pinned read the window exists to prevent.
struct MiniEbr {
    global: AtomicU64,
    slot: AtomicU64,
    bag: Mutex<Vec<(u64, Arc<AtomicU64>)>>,
    grace: u64,
}

impl MiniEbr {
    fn new(grace: u64) -> Self {
        MiniEbr {
            global: AtomicU64::new(0),
            slot: AtomicU64::new(0),
            bag: Mutex::new(Vec::new()),
            grace,
        }
    }

    fn pin(&self) -> u64 {
        let mut e = self.global.load(Ordering::SeqCst);
        loop {
            self.slot.store((e << 1) | 1, Ordering::SeqCst);
            let g = self.global.load(Ordering::SeqCst);
            if g == e {
                return e;
            }
            e = g;
        }
    }

    fn unpin(&self) {
        self.slot.store(0, Ordering::SeqCst);
    }

    fn retire(&self, cell: Arc<AtomicU64>) {
        let e = self.global.load(Ordering::SeqCst);
        self.bag.lock().push((e, cell));
    }

    fn reclaim(&self) {
        let g = self.global.load(Ordering::SeqCst);
        let v = self.slot.load(Ordering::SeqCst);
        if v == 0 || (v >> 1) == g {
            let _ = self
                .global
                .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
        let g = self.global.load(Ordering::SeqCst);
        let grace = self.grace;
        self.bag.lock().retain(|(e, cell)| {
            if g.wrapping_sub(*e) >= grace {
                cell.store(FREED, Ordering::SeqCst);
                false
            } else {
                true
            }
        });
    }
}

fn mini_ebr_body(grace: u64) {
    let ebr = Arc::new(MiniEbr::new(grace));
    let cell = Arc::new(AtomicU64::new(LIVE));
    let linked = Arc::new(AtomicUsize::new(1));

    let reader = {
        let (ebr, cell, linked) = (ebr.clone(), cell.clone(), linked.clone());
        thread::spawn(move || {
            ebr.pin();
            if linked.load(Ordering::SeqCst) == 1 {
                assert_eq!(cell.load(Ordering::SeqCst), LIVE, "freed while pinned");
            }
            ebr.unpin();
        })
    };
    let retirer = {
        let (ebr, cell, linked) = (ebr.clone(), cell.clone(), linked.clone());
        thread::spawn(move || {
            linked.store(0, Ordering::SeqCst);
            ebr.retire(cell);
            for _ in 0..3 {
                ebr.reclaim();
            }
        })
    };
    reader.join();
    retirer.join();
}

#[test]
fn epoch_grace_mutant_is_caught() {
    // Sanity: the kernel itself is clean at the real grace.
    let clean = explore(Config::new("epoch-grace-kernel").preemptions(3), || {
        mini_ebr_body(GRACE_EPOCHS)
    });
    println!("{clean}");
    assert!(clean.failure.is_none(), "{}", clean.failure.unwrap());
    assert!(clean.complete);

    // Mutant: no grace window — free the instant the bag is swept.
    let report = explore(Config::new("epoch-no-grace").preemptions(3), || {
        mini_ebr_body(0)
    });
    certify_bite(&report, &FailureKind::Panic(String::new()), || {
        mini_ebr_body(0)
    });
}

// =====================================================================
// Suite 2: staged-publication FIFO — return-implies-coverage and a
// monotone `published_upto`.
// =====================================================================

/// The two-stage pipeline in miniature: `sel` guards the commit log and
/// staging order, `publ` guards publication; whoever holds `publ` pops
/// *all* staged batches and publishes them in order. Mirrors
/// `stage_publication` + `publish_staged` in `concurrent.rs`.
struct Pipe {
    sel: Mutex<u64>,
    staged: Mutex<Vec<u64>>,
    publ: Mutex<Vec<u64>>,
    staged_upto: AtomicU64,
    published_upto: AtomicU64,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            sel: Mutex::new(0),
            staged: Mutex::new(Vec::new()),
            publ: Mutex::new(Vec::new()),
            staged_upto: AtomicU64::new(0),
            published_upto: AtomicU64::new(0),
        }
    }

    /// Stage 1: commit one entry and stage its covering batch, under
    /// `sel` (staging order is commit-log order).
    fn commit_one(&self) -> u64 {
        let mut log_len = self.sel.lock();
        *log_len += 1;
        let upto = *log_len;
        self.staged.lock().push(upto);
        self.staged_upto.store(upto, Ordering::SeqCst);
        drop(log_len);
        upto
    }

    /// Stage 2: drain every staged batch under `publ`. The caught-up
    /// fast path is the same two-counter probe the real code uses.
    fn publish_staged(&self) {
        if self.published_upto.load(Ordering::SeqCst) >= self.staged_upto.load(Ordering::SeqCst) {
            return;
        }
        let mut chain = self.publ.lock();
        let batches = std::mem::take(&mut *self.staged.lock());
        self.publish_batches(&mut chain, &batches);
    }

    /// The publication critical section: strictly increasing batches,
    /// watermark advanced per batch. Callers must hold `publ`.
    fn publish_batches(&self, chain: &mut Vec<u64>, batches: &[u64]) {
        for &upto in batches {
            let last = self.published_upto.load(Ordering::SeqCst);
            assert!(upto > last, "publication not monotone: {upto} after {last}");
            chain.push(upto);
            self.published_upto.store(upto, Ordering::SeqCst);
        }
    }

    /// Mutant stage 2: drains the staged queue *without* taking the
    /// publication lock — the refactor that "just publishes directly".
    fn publish_staged_unlocked(&self) {
        if self.published_upto.load(Ordering::SeqCst) >= self.staged_upto.load(Ordering::SeqCst) {
            return;
        }
        let batches = std::mem::take(&mut *self.staged.lock());
        let mut chain = Vec::new();
        self.publish_batches(&mut chain, &batches);
    }
}

fn staged_fifo_body(broken: bool) {
    let pipe = Arc::new(Pipe::new());
    let committers: Vec<_> = (0..2)
        .map(|_| {
            let pipe = pipe.clone();
            thread::spawn(move || {
                let upto = pipe.commit_one();
                if broken {
                    pipe.publish_staged_unlocked();
                } else {
                    pipe.publish_staged();
                }
                // Return-implies-coverage: our batch is published — by
                // us or by whichever thread drained it with its run.
                assert!(
                    pipe.published_upto.load(Ordering::SeqCst) >= upto,
                    "returned with own batch unpublished"
                );
            })
        })
        .collect();
    for c in committers {
        c.join();
    }
    assert_eq!(pipe.published_upto.load(Ordering::SeqCst), 2);
    assert!(pipe.staged.lock().is_empty(), "staged batch stranded");
}

#[test]
fn staged_publication_is_fifo_and_covering() {
    let report = explore(Config::new("staged-fifo").preemptions(4), || {
        staged_fifo_body(false)
    });
    certify(&report);
}

#[test]
fn staged_publication_mutant_is_caught() {
    let report = explore(Config::new("staged-fifo-unlocked").preemptions(4), || {
        staged_fifo_body(true)
    });
    certify_bite(&report, &FailureKind::Panic(String::new()), || {
        staged_fifo_body(true)
    });
}

// =====================================================================
// Suite 3: the inline fast-path claim — `publ.try_lock` under `sel`
// loses no publication and cannot deadlock.
// =====================================================================

impl Pipe {
    /// Stage 1 with the inline claim: one *non-blocking* try for `publ`
    /// inside the `sel` region (claim order only — legal because no
    /// holder of `publ` ever waits on `sel`); on success the batch skips
    /// the staged queue and is published right after `sel` drops.
    /// Mirrors `stage_inline_locked` + `publish_claimed`.
    fn commit_one_inline(&self) -> u64 {
        let mut log_len = self.sel.lock();
        *log_len += 1;
        let upto = *log_len;
        match self.publ.try_lock() {
            Some(mut chain) => {
                let mut batches = std::mem::take(&mut *self.staged.lock());
                batches.push(upto);
                self.staged_upto.store(upto, Ordering::SeqCst);
                drop(log_len);
                self.publish_batches(&mut chain, &batches);
            }
            None => {
                self.staged.lock().push(upto);
                self.staged_upto.store(upto, Ordering::SeqCst);
                drop(log_len);
                self.publish_staged();
            }
        }
        upto
    }

    /// Mutant: the claim acquires `publ` *blocking* inside the `sel`
    /// region — the exact lock-order violation `btadt-lint` flags.
    fn commit_one_inline_blocking(&self) -> u64 {
        let mut log_len = self.sel.lock();
        *log_len += 1;
        let upto = *log_len;
        let mut chain = self.publ.lock();
        let mut batches = std::mem::take(&mut *self.staged.lock());
        batches.push(upto);
        self.staged_upto.store(upto, Ordering::SeqCst);
        drop(log_len);
        self.publish_batches(&mut chain, &batches);
        upto
    }

    /// A publisher-side helper that holds `publ` while briefly needing
    /// `sel` — the "no holder of `publ` ever waits on `sel`" assumption
    /// broken, which only the *blocking* claim turns into an AB-BA.
    fn audit_under_both(&self) {
        let chain = self.publ.lock();
        let log_len = self.sel.lock();
        assert!(chain.len() as u64 <= *log_len, "published past the log");
        drop(log_len);
        drop(chain);
    }
}

fn inline_claim_body(broken: bool) {
    let pipe = Arc::new(Pipe::new());
    let committers: Vec<_> = (0..2)
        .map(|_| {
            let pipe = pipe.clone();
            thread::spawn(move || {
                let upto = if broken {
                    pipe.commit_one_inline_blocking()
                } else {
                    pipe.commit_one_inline()
                };
                assert!(
                    pipe.published_upto.load(Ordering::SeqCst) >= upto,
                    "returned with own batch unpublished"
                );
            })
        })
        .collect();
    let auditor = {
        let pipe = pipe.clone();
        thread::spawn(move || pipe.audit_under_both())
    };
    for c in committers {
        c.join();
    }
    auditor.join();
    assert_eq!(pipe.published_upto.load(Ordering::SeqCst), 2);
    assert!(pipe.staged.lock().is_empty(), "staged batch stranded");
}

#[test]
fn inline_claim_loses_nothing_and_never_deadlocks() {
    let report = explore(Config::new("inline-claim").preemptions(3), || {
        inline_claim_body(false)
    });
    certify(&report);
}

#[test]
fn inline_claim_blocking_mutant_deadlocks() {
    let report = explore(Config::new("inline-claim-blocking").preemptions(3), || {
        inline_claim_body(true)
    });
    certify_bite(&report, &FailureKind::Deadlock, || inline_claim_body(true));
}

// =====================================================================
// Suite 4: `wait_commit_past` — the lock-bridge publication notify
// cannot miss a waiter.
// =====================================================================

/// The generation-wait protocol in miniature, mirroring
/// `wait_commit_past` and the notify tail of `publish_batches_locked`:
/// waiters register in `gen_waiters` *before* probing, publishers bump
/// the generation and then bridge through `gen_lock` before notifying,
/// which orders the notify after any in-flight check-then-park.
struct GenWait {
    commit_gen: AtomicU64,
    gen_waiters: AtomicUsize,
    gen_lock: Mutex<()>,
    gen_cv: Condvar,
}

impl GenWait {
    fn new() -> Self {
        GenWait {
            commit_gen: AtomicU64::new(0),
            gen_waiters: AtomicUsize::new(0),
            gen_lock: Mutex::new(()),
            gen_cv: Condvar::new(),
        }
    }

    fn wait_past(&self, seen: u64) {
        self.gen_waiters.fetch_add(1, Ordering::SeqCst);
        let mut lk = self.gen_lock.lock();
        while self.commit_gen.load(Ordering::SeqCst) <= seen {
            lk = self.gen_cv.wait(lk);
        }
        drop(lk);
        self.gen_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// As the real code: a *timed* wait, so a missed wakeup shows up as
    /// the deadline becoming load-bearing rather than a hang. The model
    /// only fires a deadline when the system would otherwise deadlock
    /// and counts it in `timeouts_fired`.
    fn wait_past_timed(&self, seen: u64) {
        self.gen_waiters.fetch_add(1, Ordering::SeqCst);
        let mut lk = self.gen_lock.lock();
        while self.commit_gen.load(Ordering::SeqCst) <= seen {
            let (relk, timed_out) = self
                .gen_cv
                .wait_timeout(lk, std::time::Duration::from_millis(50));
            lk = relk;
            if timed_out {
                break;
            }
        }
        drop(lk);
        self.gen_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn publish(&self, bridge: bool) {
        self.commit_gen.fetch_add(1, Ordering::SeqCst);
        if self.gen_waiters.load(Ordering::SeqCst) > 0 {
            if bridge {
                // The bridge: orders this notify after any waiter that
                // probed the old generation and is about to park.
                drop(self.gen_lock.lock());
            }
            self.gen_cv.notify_all();
        }
    }
}

fn gen_wait_body(bridge: bool) {
    let gw = Arc::new(GenWait::new());
    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let gw = gw.clone();
            thread::spawn(move || gw.wait_past(0))
        })
        .collect();
    let publisher = {
        let gw = gw.clone();
        thread::spawn(move || gw.publish(bridge))
    };
    for w in waiters {
        w.join();
    }
    publisher.join();
    assert_eq!(gw.commit_gen.load(Ordering::SeqCst), 1);
    assert_eq!(gw.gen_waiters.load(Ordering::SeqCst), 0);
}

#[test]
fn wait_commit_past_never_misses_a_wakeup() {
    let report = explore(Config::new("gen-wait").preemptions(3), || {
        gen_wait_body(true)
    });
    certify(&report);
}

/// The timed variant must pass *without the deadline ever firing*: the
/// timeout is a belt, not the protocol.
#[test]
fn wait_commit_past_timeout_is_never_load_bearing() {
    let report = explore(Config::new("gen-wait-timed").preemptions(3), || {
        let gw = Arc::new(GenWait::new());
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let gw = gw.clone();
                thread::spawn(move || gw.wait_past_timed(0))
            })
            .collect();
        let publisher = {
            let gw = gw.clone();
            thread::spawn(move || gw.publish(true))
        };
        for w in waiters {
            w.join();
        }
        publisher.join();
        assert_eq!(gw.commit_gen.load(Ordering::SeqCst), 1);
        assert_eq!(timeouts_fired(), 0, "deadline was load-bearing");
    });
    certify(&report);
}

#[test]
fn wait_commit_past_bridgeless_mutant_misses_wakeups() {
    let report = explore(Config::new("gen-wait-no-bridge").preemptions(4), || {
        gen_wait_body(false)
    });
    certify_bite(&report, &FailureKind::Deadlock, || gen_wait_body(false));
}
