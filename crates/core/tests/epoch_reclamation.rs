//! Reclamation churn stress: appenders retiring snapshots through the
//! epoch domain while readers pin and unpin around them.
//!
//! What these tests establish, from the outside:
//!
//! * **No use-after-free**: every borrowed `ChainView` taken mid-churn is
//!   internally consistent (genesis-rooted, id-monotone, tip/len
//!   coherent) and byte-identical to its owned upgrade — a freed or
//!   recycled buffer would tear these invariants long before a crash.
//! * **Bounded retirement**: the retired-bag population returns to zero
//!   at every quiescent point after the grace period is driven, and the
//!   byte high-water mark stays far below the retire-everything-forever
//!   volume that PR 2's retire list would have accumulated.
//!
//! The CI `soak` job runs this suite in release mode at
//! `RUST_TEST_THREADS=1` and `4` — serial for maximum intra-test
//! contention, parallel for scheduler noise on top.

use btadt_core::blocktree::CandidateBlock;
use btadt_core::chain::Blockchain;
use btadt_core::concurrent::ConcurrentBlockTree;
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_core::validity::AcceptAll;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Drains every ripe bag at a quiescent point.
fn reclaim_fully<F, P>(tree: &ConcurrentBlockTree<F, P>)
where
    F: btadt_core::selection::SelectionFn,
    P: btadt_core::validity::ValidityPredicate,
{
    tree.epochs().reclaim_quiescent();
}

/// Workload shape of one churn round.
#[derive(Clone, Copy)]
struct Churn {
    appenders: usize,
    readers: usize,
    appends_each: usize,
    reads_each: usize,
}

/// One churn round: appenders and readers race, then everyone quiesces at
/// the barrier and the main thread checks the reclamation ledger.
fn churn_round(
    tree: &ConcurrentBlockTree<LongestChain, AcceptAll>,
    seed: u64,
    round: u64,
    churn: Churn,
    max_pending_seen: &AtomicUsize,
) {
    let Churn {
        appenders,
        readers,
        appends_each,
        reads_each,
    } = churn;
    let barrier = Barrier::new(appenders + readers);
    std::thread::scope(|s| {
        for a in 0..appenders {
            let (tree, barrier) = (tree, &barrier);
            s.spawn(move || {
                barrier.wait();
                for i in 0..appends_each {
                    let nonce = (round << 40) | ((a as u64) << 20) | i as u64;
                    tree.append(CandidateBlock::simple(ProcessId(a as u32), nonce))
                        .expect("AcceptAll");
                }
            });
        }
        for _ in 0..readers {
            let (tree, barrier, max_pending_seen) = (tree, &barrier, max_pending_seen);
            s.spawn(move || {
                barrier.wait();
                let mut last: Option<Blockchain> = None;
                for i in 0..reads_each {
                    let view = tree.read();
                    // Integrity of the borrowed view: a reclaimed-under-us
                    // buffer would tear these invariants.
                    let ids = view.ids();
                    assert_eq!(ids[0], BlockId::GENESIS, "views are genesis-rooted");
                    assert_eq!(view.tip(), *ids.last().unwrap());
                    assert_eq!(view.len(), ids.len());
                    assert!(
                        ids.windows(2).all(|w| w[0] < w[1]),
                        "longest-chain append-only commits are id-monotone"
                    );
                    // The owned upgrade must be bit-identical.
                    let owned = view.to_owned();
                    assert_eq!(owned.ids(), ids);
                    drop(view);
                    if let Some(prev) = &last {
                        assert!(
                            prev.is_prefix_of(&owned),
                            "reader-local monotonicity under churn"
                        );
                    }
                    last = Some(owned);
                    max_pending_seen.fetch_max(tree.epochs().pending_items(), Ordering::Relaxed);
                    if splitmix64_at(seed ^ 0xC0_11EC, (round << 16) | i as u64).is_multiple_of(5) {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

#[test]
fn churn_stress_bounds_retired_bags_across_20_seeds() {
    for seed in 0..20u64 {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let max_pending = AtomicUsize::new(0);
        let churn = Churn {
            appenders: 2,
            readers: 2,
            appends_each: 60,
            reads_each: 120,
        };
        let rounds = 3u64;
        for round in 0..rounds {
            churn_round(&tree, seed, round, churn, &max_pending);
            // Quiescent point: no pins are live, so driving the grace
            // period must empty the bags completely.
            reclaim_fully(&tree);
            assert_eq!(
                tree.epochs().pending_items(),
                0,
                "seed {seed} round {round}: quiescent reclaim leaves residue"
            );
        }
        let total_appends = rounds as usize * churn.appenders * churn.appends_each;
        assert_eq!(tree.len(), total_appends + 1, "seed {seed}: all committed");
        // Boundedness: at no sampled instant did the bags approach the
        // one-retiree-per-commit volume that retire-until-drop accrues.
        let peak = max_pending.load(Ordering::Relaxed);
        assert!(
            peak < total_appends,
            "seed {seed}: pending garbage ({peak}) reached commit volume ({total_appends})"
        );
        // The ledger balances: everything retired was eventually freed.
        assert_eq!(tree.epochs().retired_bytes(), 0, "seed {seed}");
        assert!(tree.epochs().retired_bytes_peak() > 0, "seed {seed}");
        assert!(
            tree.epochs().reclaimed_items() as usize >= total_appends / 2,
            "seed {seed}: reclamation kept pace"
        );
    }
}

/// Retirement now lands in per-thread bag slots (no global garbage
/// mutex) and sweeps fire at an adaptive threshold capped at 256 pending
/// boxes. From the outside that must look like: (a) the pending peak of
/// an uncontended (inline-path, batch ≈ 1) run stays within a small
/// multiple of the cap — the threshold adapts *up* but sweeps still
/// fire; (b) at quiescence, every slot drains to zero — no bag is
/// stranded in a slot whose retiring thread has exited.
#[test]
fn per_thread_bags_bound_the_peak_and_drain_at_quiescence() {
    let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
    let max_pending = AtomicUsize::new(0);
    // Phase 1: a long uncontended run — every append publishes (and
    // retires) individually, the worst case for sweep frequency.
    for i in 0..2_000u64 {
        tree.append(CandidateBlock::simple(ProcessId(0), i))
            .expect("AcceptAll");
        max_pending.fetch_max(tree.epochs().pending_items(), Ordering::Relaxed);
    }
    assert!(
        max_pending.load(Ordering::Relaxed) <= 2 * 256,
        "inline-path pending peak {} exceeded twice the threshold cap",
        max_pending.load(Ordering::Relaxed)
    );
    // Phase 2: retiring threads come and go — bags must outlive their
    // retirers (slots belong to the domain, not to thread-local storage).
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let tree = &tree;
            s.spawn(move || {
                for i in 0..200u64 {
                    tree.append(CandidateBlock::simple(
                        ProcessId(t),
                        (1 << 52) | ((t as u64) << 24) | i,
                    ))
                    .expect("AcceptAll");
                }
            });
        }
    });
    // Quiescent: every slot must hand over everything it parked.
    reclaim_fully(&tree);
    assert_eq!(tree.epochs().pending_items(), 0, "all bag slots drained");
    assert_eq!(tree.epochs().retired_bytes(), 0, "byte ledger balances");
    assert_eq!(tree.len(), 2_801);
}

/// A reader parked on a view is the worst case for reclamation: nothing
/// it can see may be freed, everything after it must still be freed once
/// it lets go — and the view itself must stay valid throughout.
#[test]
fn parked_reader_delays_but_never_loses_reclamation() {
    let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
    for i in 0..10u64 {
        tree.append(CandidateBlock::simple(ProcessId(0), i))
            .unwrap();
    }
    let parked = tree.read();
    let before = parked.to_owned();
    // Churn past the parked reader.
    std::thread::scope(|s| {
        for t in 0..3u32 {
            let tree = &tree;
            s.spawn(move || {
                for i in 0..100u64 {
                    tree.append(CandidateBlock::simple(
                        ProcessId(t),
                        (1 << 50) | ((t as u64) << 20) | i,
                    ))
                    .unwrap();
                }
            });
        }
    });
    reclaim_fully(&tree);
    let pending_while_parked = tree.epochs().pending_items();
    assert!(
        pending_while_parked > 0,
        "a parked pin must hold back at least the grace window"
    );
    // The parked view is still exactly what it was.
    assert_eq!(parked, before);
    assert!(parked.is_prefix_of(&tree.read_owned()));
    drop(parked);
    reclaim_fully(&tree);
    assert_eq!(
        tree.epochs().pending_items(),
        0,
        "after the reader unpins the backlog drains fully"
    );
    assert_eq!(tree.len(), 311);
}

/// Regression: deferred recycle items keep the *address* of the tree's
/// spare-box bin, and the tree struct itself is movable safe Rust.
/// Building a tree in one stack frame, appending (each publication parks
/// a recycle item), and returning the tree by value must leave those
/// items pointing at a still-valid bin. Before the bin was boxed, the
/// move left them dangling into the dead frame and the drop below
/// deadlocked on a mutex read from reused stack memory — found by the
/// deep-tree bench, whose grow closure returns its tree.
#[test]
fn tree_survives_a_move_with_pending_recycled_chains() {
    fn build() -> ConcurrentBlockTree<LongestChain, AcceptAll> {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..500u64 {
            tree.append(CandidateBlock::simple(ProcessId(0), i))
                .expect("AcceptAll");
        }
        tree // moved to the caller with recycle items still pending
    }
    let tree = build();
    // A second move, through the heap and back.
    let tree = *Box::new(tree);
    for i in 0..100u64 {
        tree.append(CandidateBlock::simple(ProcessId(1), (1 << 40) | i))
            .expect("AcceptAll");
    }
    assert_eq!(tree.len(), 601);
    reclaim_fully(&tree);
    assert_eq!(tree.epochs().pending_items(), 0);
    drop(tree); // must terminate and balance the byte ledger
}

/// Interleaved graft reorgs + appends + readers: reclamation under chains
/// that shrink as well as grow (reorg splices retire buffers, not just
/// boxes).
#[test]
fn reorg_churn_reclaims_superseded_buffers() {
    for seed in 0..6u64 {
        let tree = ConcurrentBlockTree::new(btadt_core::selection::HeaviestWork, AcceptAll);
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let tree = &tree;
                s.spawn(move || {
                    for i in 0..40u64 {
                        let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                        let view = tree.read();
                        let ids = view.ids();
                        let parent = ids[(r as usize >> 4) % ids.len()];
                        drop(view);
                        tree.graft(
                            parent,
                            CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i)
                                .with_work(1 + r % 4),
                        )
                        .expect("AcceptAll");
                    }
                });
            }
            let tree = &tree;
            s.spawn(move || {
                for _ in 0..200 {
                    let view = tree.read();
                    assert_eq!(view.ids()[0], BlockId::GENESIS);
                    assert_eq!(view.to_owned().ids(), view.ids());
                }
            });
        });
        assert_eq!(tree.selected_tip(), tree.selected_tip_full_scan());
        reclaim_fully(&tree);
        assert_eq!(tree.epochs().pending_items(), 0, "seed {seed}");
        assert_eq!(tree.epochs().retired_bytes(), 0, "seed {seed}");
    }
}
