//! Table-driven bit-flip matrix over the WAL's on-disk artifacts.
//!
//! The recovery contract under corruption, by artifact:
//!
//! * **Active (last) segment, defective tail** — those records were never
//!   acked, so recovery *trims* to the last valid frame and keeps going.
//! * **Sealed segment** — acked data; any defect is a hard
//!   `InvalidData` error, never a silent skip.
//! * **Checkpoint** — an optimization over the segment log, not the log:
//!   a corrupt checkpoint (bad magic, bad CRC, truncation) is ignored
//!   and recovery replays the full segment chain. But if compaction
//!   already deleted segments the checkpoint covered, that is real loss
//!   and `open` must fail.

#![cfg(not(miri))] // exercises real files, fs::read/write, set_len

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

use btadt_core::block::{Payload, Tx};
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::wal::{CommitRecord, Wal, WalConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "btadt-walcorrupt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed) // relaxed: unique-name counter
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn rec(i: u32) -> CommitRecord {
    CommitRecord {
        id: BlockId(i),
        parent: BlockId(i.saturating_sub(1)),
        producer: ProcessId(i % 3),
        merit_index: i % 5,
        work: 1 + i as u64 % 7,
        digest: 0xC0BB_1E50 ^ i as u64,
        payload: match i % 3 {
            0 => Payload::Empty,
            1 => Payload::Opaque(i as u64 * 17),
            _ => Payload::Transactions(vec![Tx::new(i as u64, i, i + 1, 9 + i as u64)]),
        },
    }
}

/// Writes `n` records (ids 1..=n) through a fresh WAL at `dir` and
/// returns them. `segment_bytes` controls how many segments seal.
fn seed(dir: &PathBuf, n: u32, segment_bytes: u64) -> Vec<CommitRecord> {
    let mut cfg = WalConfig::new(dir).segment_bytes(segment_bytes);
    cfg.fsync = false; // crash-consistency is not under test; speed is
    let (mut wal, replay) = Wal::open(cfg).unwrap();
    assert!(replay.is_empty());
    let recs: Vec<CommitRecord> = (1..=n).map(rec).collect();
    for r in &recs {
        wal.append_commits(std::iter::once(r.clone())).unwrap();
    }
    recs
}

fn open_at(dir: &PathBuf, segment_bytes: u64) -> io::Result<(Wal, Vec<CommitRecord>)> {
    let mut cfg = WalConfig::new(dir).segment_bytes(segment_bytes);
    cfg.fsync = false;
    Wal::open(cfg)
}

/// Walks `[len][crc][body]` frames and returns each frame's byte offset.
fn frame_offsets(data: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut off = 0usize;
    while off + 8 <= data.len() {
        offs.push(off);
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
    }
    assert_eq!(off, data.len(), "seed log has whole frames only");
    offs
}

fn flip(path: &PathBuf, at: usize) {
    let mut data = fs::read(path).unwrap();
    data[at] ^= 0xFF;
    fs::write(path, &data).unwrap();
}

/// The single (active) segment of a one-segment log.
fn only_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "expected exactly one segment");
    segs.remove(0)
}

const ONE_SEG: u64 = 1 << 20; // everything stays in the active segment

/// Byte positions to corrupt *within the last frame*, as (label, offset
/// relative to the frame start, or usize::MAX for "last byte of file").
const TAIL_FLIPS: &[(&str, usize)] = &[
    ("length word", 0),
    ("crc word", 4),
    ("first body byte", 8),
    ("last byte", usize::MAX),
];

/// A defective final frame on the active segment is a torn tail: trimmed,
/// every earlier record survives, and appending resumes cleanly.
#[test]
fn active_segment_tail_flips_are_trimmed() {
    for (label, rel) in TAIL_FLIPS {
        let dir = tmp_dir("tail");
        let recs = seed(&dir, 8, ONE_SEG);
        let seg = only_segment(&dir);
        let data_len = fs::read(&seg).unwrap().len();
        let last = *frame_offsets(&fs::read(&seg).unwrap()).last().unwrap();
        let at = if *rel == usize::MAX {
            data_len - 1
        } else {
            last + rel
        };
        flip(&seg, at);

        let (mut wal, replay) = open_at(&dir, ONE_SEG)
            .unwrap_or_else(|e| panic!("tail flip at {label}: open must trim, got error {e}"));
        assert_eq!(
            replay,
            recs[..7],
            "tail flip at {label}: all acked-before-the-tear records survive"
        );
        assert_eq!(
            wal.stats().trimmed_bytes,
            (data_len - last) as u64,
            "tail flip at {label}: exactly the defective frame is trimmed"
        );
        // The trim point is a valid append position.
        wal.append_commits(std::iter::once(rec(100))).unwrap();
        drop(wal);
        let (_, replay) = open_at(&dir, ONE_SEG).unwrap();
        assert_eq!(replay.len(), 8);
        assert_eq!(replay[7], rec(100));
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A defect *before* the final frame of the active segment also trims —
/// everything from the defect on was never made durable-and-acked as a
/// prefix, and the WAL only promises prefix durability.
#[test]
fn active_segment_mid_flip_trims_the_suffix() {
    let dir = tmp_dir("midtail");
    let recs = seed(&dir, 8, ONE_SEG);
    let seg = only_segment(&dir);
    let offs = frame_offsets(&fs::read(&seg).unwrap());
    flip(&seg, offs[4] + 4); // crc of frame 4: records 5.. die

    let (_, replay) = open_at(&dir, ONE_SEG).unwrap();
    assert_eq!(replay, recs[..4], "valid prefix before the defect replays");
    fs::remove_dir_all(&dir).unwrap();
}

/// Bit flips anywhere in a sealed segment are hard errors — header, crc,
/// body, or a frame boundary deep in the file.
#[test]
fn sealed_segment_flips_are_hard_errors() {
    // Small segments: 20 records roll into several sealed segments.
    const SMALL: u64 = 64;
    for (label, pick) in [
        ("first byte", 0usize),
        ("crc of first frame", 4),
        ("first body byte", 8),
        ("mid-file", usize::MAX),
    ] {
        let dir = tmp_dir("sealed");
        seed(&dir, 20, SMALL);
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "wal"))
            .collect();
        segs.sort();
        assert!(segs.len() >= 3, "seed must seal at least two segments");
        let sealed = segs[0].clone(); // never the active (last) one
        let len = fs::read(&sealed).unwrap().len();
        let at = if pick == usize::MAX { len / 2 } else { pick };
        flip(&sealed, at);

        let err = open_at(&dir, SMALL)
            .err()
            .unwrap_or_else(|| panic!("sealed flip at {label}: open must fail"));
        assert_eq!(
            err.kind(),
            io::ErrorKind::InvalidData,
            "sealed flip at {label}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Checkpoint defects are ignored: recovery falls back to the full
/// segment log and replays identically, flagging the fallback in stats.
#[test]
fn checkpoint_flips_are_ignored_when_the_log_survives() {
    for (label, at) in [
        ("magic byte", 0usize),
        ("count word", 8),
        ("first record crc", 16 + 4),
        ("last byte", usize::MAX),
    ] {
        let dir = tmp_dir("ckpt");
        let recs = seed(&dir, 8, ONE_SEG);
        {
            // Write a checkpoint covering the whole log. Nothing sealed
            // exists (single active segment), so no segment is deleted
            // and the full log remains beside the checkpoint.
            let (mut wal, _) = open_at(&dir, ONE_SEG).unwrap();
            wal.checkpoint(&recs).unwrap();
        }
        let ckpt = dir.join("checkpoint.ckpt");
        let len = fs::read(&ckpt).unwrap().len();
        flip(&ckpt, if at == usize::MAX { len - 1 } else { at });

        let (wal, replay) = open_at(&dir, ONE_SEG).unwrap_or_else(|e| {
            panic!("ckpt flip at {label}: open must fall back to the log, got {e}")
        });
        assert_eq!(replay, recs, "ckpt flip at {label}: full log replays");
        assert!(
            wal.stats().checkpoint_ignored,
            "ckpt flip at {label}: the fallback is reported"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Truncated checkpoints (torn short of even the header, or mid-records)
/// are likewise ignored.
#[test]
fn truncated_checkpoints_are_ignored() {
    for (label, keep) in [("below the header", 7usize), ("mid-records", usize::MAX)] {
        let dir = tmp_dir("ckpt-trunc");
        let recs = seed(&dir, 8, ONE_SEG);
        {
            let (mut wal, _) = open_at(&dir, ONE_SEG).unwrap();
            wal.checkpoint(&recs).unwrap();
        }
        let ckpt = dir.join("checkpoint.ckpt");
        let data = fs::read(&ckpt).unwrap();
        let keep = if keep == usize::MAX {
            data.len() - 5
        } else {
            keep
        };
        fs::write(&ckpt, &data[..keep]).unwrap();

        let (wal, replay) = open_at(&dir, ONE_SEG).unwrap();
        assert_eq!(replay, recs, "ckpt truncation {label}: full log replays");
        assert!(wal.stats().checkpoint_ignored);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// The tolerance is *not* blind: once compaction has deleted segments the
/// checkpoint covered, a corrupt checkpoint means acked records are gone
/// — `open` must fail loudly, not resurrect a shorter log.
#[test]
fn corrupt_checkpoint_with_compacted_segments_is_real_loss() {
    const SMALL: u64 = 64;
    let dir = tmp_dir("ckpt-loss");
    let recs = seed(&dir, 20, SMALL);
    {
        let (mut wal, _) = open_at(&dir, SMALL).unwrap();
        wal.checkpoint(&recs).unwrap(); // deletes every covered sealed segment
        assert!(wal.stats().segments_dropped > 0, "compaction happened");
    }
    flip(&dir.join("checkpoint.ckpt"), 0);

    let err = open_at(&dir, SMALL)
        .err()
        .expect("corrupt checkpoint over a compacted log is unrecoverable");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    fs::remove_dir_all(&dir).unwrap();
}

/// An intact checkpoint still short-circuits recovery (control case: the
/// fallback flag stays clear on the happy path).
#[test]
fn intact_checkpoint_is_used_and_not_flagged() {
    const SMALL: u64 = 64;
    let dir = tmp_dir("ckpt-ok");
    let recs = seed(&dir, 20, SMALL);
    {
        let (mut wal, _) = open_at(&dir, SMALL).unwrap();
        wal.checkpoint(&recs).unwrap();
    }
    let (wal, replay) = open_at(&dir, SMALL).unwrap();
    assert_eq!(replay, recs);
    assert!(!wal.stats().checkpoint_ignored);
    fs::remove_dir_all(&dir).unwrap();
}
