//! Property-based tests for the core data structures and criteria:
//! prefix-order laws, store/tree invariants, sequential-specification
//! soundness, score monotonicity, and metamorphic properties of the
//! consistency checkers.

use btadt_core::adt::{check_sequential_history, AbstractDataType, Operation};
use btadt_core::block::Payload;
use btadt_core::blocktree::{BlockTreeAdt, BtInput, BtOutput, CandidateBlock};
use btadt_core::chain::Blockchain;
use btadt_core::criteria::{strong_prefix, LivenessMode};
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::linearizability::{check_linearizable, Linearizability};
use btadt_core::score::{LengthScore, ScoreFn, WorkScore};
use btadt_core::selection::{Ghost, HeaviestWork, LongestChain, SelectionFn};
use btadt_core::store::{BlockStore, TreeMembership};
use btadt_core::validity::AcceptAll;
use proptest::prelude::*;

/// A random tree of `n` blocks: parent of block i+1 is uniform among the
/// already-minted blocks (including genesis).
fn arb_store(max: usize) -> impl Strategy<Value = BlockStore> {
    prop::collection::vec((0usize..1_000, 1u64..5), 1..max).prop_map(|specs| {
        let mut store = BlockStore::new();
        for (i, (pick, work)) in specs.into_iter().enumerate() {
            let parent = BlockId((pick % store.len()) as u32);
            store.mint(
                parent,
                ProcessId((i % 4) as u32),
                (i % 4) as u32,
                work,
                i as u64,
                Payload::Empty,
            );
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── Store invariants ────────────────────────────────────────────────

    #[test]
    fn heights_are_parent_plus_one(store in arb_store(40)) {
        for id in store.ids().skip(1) {
            let parent = store.parent(id).unwrap();
            prop_assert_eq!(store.height(id), store.height(parent) + 1);
        }
    }

    #[test]
    fn cumulative_work_is_sum_along_path(store in arb_store(40)) {
        for id in store.ids() {
            let sum: u64 = store.ancestors(id).map(|b| store.get(b).work).sum();
            prop_assert_eq!(store.cumulative_work(id), sum);
        }
    }

    #[test]
    fn common_ancestor_is_deepest_shared(store in arb_store(30)) {
        let ids: Vec<BlockId> = store.ids().collect();
        for &a in ids.iter().take(8) {
            for &b in ids.iter().rev().take(8) {
                let ca = store.common_ancestor(a, b);
                prop_assert!(store.is_ancestor(ca, a));
                prop_assert!(store.is_ancestor(ca, b));
                // No child of ca is an ancestor of both.
                for &c in store.children(ca) {
                    prop_assert!(!(store.is_ancestor(c, a) && store.is_ancestor(c, b)));
                }
            }
        }
    }

    #[test]
    fn path_from_genesis_is_coherent(store in arb_store(30)) {
        for id in store.ids() {
            let path = store.path_from_genesis(id);
            prop_assert_eq!(path[0], BlockId::GENESIS);
            prop_assert_eq!(*path.last().unwrap(), id);
            for w in path.windows(2) {
                prop_assert_eq!(store.parent(w[1]), Some(w[0]));
            }
        }
    }

    // ── Jump-pointer ancestry vs the naive parent walk ──────────────────
    //
    // `ancestor_at` and `common_ancestor` answer in O(log n) through the
    // store's skew-binary jump pointers; the reference implementations
    // below walk parent edges one at a time. They must agree on every
    // block pair of random trees.

    #[test]
    fn ancestor_at_matches_naive_walk(store in arb_store(60)) {
        for id in store.ids() {
            let h = store.height(id);
            for target in 0..=h {
                let mut naive = id;
                for _ in 0..(h - target) {
                    naive = store.parent(naive).unwrap();
                }
                prop_assert_eq!(
                    store.ancestor_at(id, target),
                    naive,
                    "jump-pointer ancestor_at({:?}, {}) diverged", id, target
                );
            }
        }
    }

    #[test]
    fn common_ancestor_matches_naive_two_pointer(store in arb_store(60)) {
        let naive_lca = |mut a: BlockId, mut b: BlockId| {
            while store.height(a) > store.height(b) {
                a = store.parent(a).unwrap();
            }
            while store.height(b) > store.height(a) {
                b = store.parent(b).unwrap();
            }
            while a != b {
                a = store.parent(a).unwrap();
                b = store.parent(b).unwrap();
            }
            a
        };
        let ids: Vec<BlockId> = store.ids().collect();
        for &a in ids.iter().take(12) {
            for &b in ids.iter().rev().take(12) {
                prop_assert_eq!(store.common_ancestor(a, b), naive_lca(a, b));
            }
        }
    }

    // ── Prefix-order laws ───────────────────────────────────────────────

    #[test]
    fn prefix_laws(store in arb_store(30)) {
        let ids: Vec<BlockId> = store.ids().collect();
        let chains: Vec<Blockchain> = ids
            .iter()
            .take(10)
            .map(|&id| Blockchain::from_tip(&store, id))
            .collect();
        for a in &chains {
            prop_assert!(a.is_prefix_of(a), "reflexive");
            for b in &chains {
                if a.is_prefix_of(b) && b.is_prefix_of(a) {
                    prop_assert_eq!(a, b, "antisymmetric");
                }
                prop_assert_eq!(
                    a.common_prefix_len(b),
                    b.common_prefix_len(a),
                    "common prefix symmetric"
                );
                for c in &chains {
                    if a.is_prefix_of(b) && b.is_prefix_of(c) {
                        prop_assert!(a.is_prefix_of(c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn chain_prefix_matches_ancestry(store in arb_store(30)) {
        let ids: Vec<BlockId> = store.ids().collect();
        for &a in ids.iter().take(10) {
            for &b in ids.iter().take(10) {
                let ca = Blockchain::from_tip(&store, a);
                let cb = Blockchain::from_tip(&store, b);
                prop_assert_eq!(ca.is_prefix_of(&cb), store.is_ancestor(a, b));
            }
        }
    }

    #[test]
    fn mcps_is_common_ancestor_score(store in arb_store(30)) {
        let ids: Vec<BlockId> = store.ids().collect();
        for &a in ids.iter().take(8) {
            for &b in ids.iter().take(8) {
                let ca = Blockchain::from_tip(&store, a);
                let cb = Blockchain::from_tip(&store, b);
                let anc = store.common_ancestor(a, b);
                prop_assert_eq!(
                    ca.mcps(&cb, &LengthScore),
                    store.height(anc) as u64
                );
            }
        }
    }

    // ── Score monotonicity (the §3.1.2 requirement) ─────────────────────

    #[test]
    fn scores_strictly_increase_along_chains(store in arb_store(40)) {
        let ws = WorkScore::new(&store);
        for id in store.ids().skip(1) {
            let chain = Blockchain::from_tip(&store, id);
            for n in 2..=chain.len() {
                prop_assert!(
                    LengthScore.score_prefix(&chain, n)
                        > LengthScore.score_prefix(&chain, n - 1)
                );
                prop_assert!(ws.score_prefix(&chain, n) > ws.score_prefix(&chain, n - 1));
            }
        }
    }

    // ── Selection-function laws ─────────────────────────────────────────

    #[test]
    fn selections_return_members_and_are_stable(store in arb_store(40)) {
        let members = TreeMembership::full(&store);
        let fns: Vec<Box<dyn SelectionFn>> = vec![
            Box::new(LongestChain),
            Box::new(HeaviestWork),
            Box::new(Ghost::default()),
        ];
        for f in &fns {
            let tip = f.select_tip(&store, &members);
            prop_assert!(members.contains(tip));
            prop_assert_eq!(f.select_tip(&store, &members), tip, "deterministic");
            // Selected tips are leaves.
            prop_assert!(
                store.children(tip).iter().all(|c| !members.contains(*c)),
                "tip must be a leaf"
            );
        }
    }

    #[test]
    fn longest_chain_maximizes_height(store in arb_store(40)) {
        let members = TreeMembership::full(&store);
        let tip = LongestChain.select_tip(&store, &members);
        let max_height = store.ids().map(|b| store.height(b)).max().unwrap();
        prop_assert_eq!(store.height(tip), max_height);
    }

    // ── Sequential specification ────────────────────────────────────────

    #[test]
    fn executed_words_are_in_the_language(ops in prop::collection::vec(0u8..3, 1..12)) {
        let adt = BlockTreeAdt::new(LongestChain, AcceptAll);
        let mut state = adt.initial_state();
        let mut word = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let input = if op == 0 {
                BtInput::Read
            } else {
                BtInput::Append(CandidateBlock::simple(ProcessId(op as u32), i as u64))
            };
            let output = adt.output(&state, &input);
            state = adt.transition(&state, &input);
            word.push(Operation::with_output(input, output));
        }
        prop_assert!(check_sequential_history(&adt, &word).is_ok());
    }

    #[test]
    fn corrupted_read_outputs_are_rejected(appends in 1u64..6) {
        let adt = BlockTreeAdt::new(LongestChain, AcceptAll);
        let mut word = Vec::new();
        for i in 0..appends {
            word.push(Operation::with_output(
                BtInput::Append(CandidateBlock::simple(ProcessId(0), i)),
                BtOutput::Appended(true),
            ));
        }
        // Claim a read of the genesis-only chain after appends: wrong.
        word.push(Operation::with_output(
            BtInput::Read,
            BtOutput::Chain(Blockchain::genesis()),
        ));
        let err = check_sequential_history(&adt, &word).unwrap_err();
        prop_assert_eq!(err.index as u64, appends);
    }

    // ── Criteria metamorphic properties ─────────────────────────────────

    #[test]
    fn comparable_read_sets_satisfy_strong_prefix(lens in prop::collection::vec(0u32..20, 1..20)) {
        // All reads along ONE chain: SP must hold whatever the lengths.
        let mut h = History::new();
        for (i, &len) in lens.iter().enumerate() {
            let chain = Blockchain::from_ids((0..=len).map(BlockId).collect());
            h.push_complete(
                ProcessId((i % 3) as u32),
                Invocation::Read,
                Time(i as u64 * 10),
                Response::Chain(chain),
                Time(i as u64 * 10 + 1),
            );
        }
        prop_assert!(strong_prefix::check(&h).holds);
        prop_assert!(strong_prefix::check_naive(&h).holds);
    }

    #[test]
    fn one_divergent_read_breaks_strong_prefix(lens in prop::collection::vec(1u32..20, 2..15)) {
        let mut h = History::new();
        for (i, &len) in lens.iter().enumerate() {
            let chain = Blockchain::from_ids((0..=len).map(BlockId).collect());
            h.push_complete(
                ProcessId(0),
                Invocation::Read,
                Time(i as u64 * 10),
                Response::Chain(chain),
                Time(i as u64 * 10 + 1),
            );
        }
        // A chain that shares only genesis, with a distinct second block id
        // outside the 0..20 range used above.
        let rogue = Blockchain::from_ids(vec![BlockId::GENESIS, BlockId(999)]);
        h.push_complete(
            ProcessId(1),
            Invocation::Read,
            Time(1_000),
            Response::Chain(rogue),
            Time(1_001),
        );
        prop_assert!(!strong_prefix::check(&h).holds);
        prop_assert!(!strong_prefix::check_naive(&h).holds);
        prop_assert_eq!(
            strong_prefix::check(&h).holds,
            strong_prefix::check_naive(&h).holds
        );
    }

    #[test]
    fn liveness_vacuous_mode_never_fails(lens in prop::collection::vec(0u32..10, 0..10)) {
        use btadt_core::criteria::{eventual_prefix, ever_growing_tree};
        let mut h = History::new();
        for (i, &len) in lens.iter().enumerate() {
            let chain = Blockchain::from_ids((0..=len).map(BlockId).collect());
            h.push_complete(
                ProcessId(0),
                Invocation::Read,
                Time(i as u64 * 2),
                Response::Chain(chain),
                Time(i as u64 * 2 + 1),
            );
        }
        prop_assert!(ever_growing_tree::check(&h, &LengthScore, LivenessMode::Vacuous).holds);
        prop_assert!(eventual_prefix::check(&h, &LengthScore, LivenessMode::Vacuous).holds);
    }

    // ── Linearizability of sequential executions ────────────────────────

    #[test]
    fn sequential_executions_always_linearize(ops in prop::collection::vec(0u8..2, 1..10)) {
        // Execute on one BlockTree sequentially, recording true times.
        let mut bt = btadt_core::blocktree::BlockTree::new(LongestChain, AcceptAll);
        let mut h = History::new();
        let mut t = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            t += 2;
            if op == 0 {
                let chain = bt.read();
                h.push_complete(
                    ProcessId(0),
                    Invocation::Read,
                    Time(t - 1),
                    Response::Chain(chain),
                    Time(t),
                );
            } else {
                let parent = bt.selected_tip();
                let id = bt.graft(parent, CandidateBlock::simple(ProcessId(0), i as u64));
                h.push_complete(
                    ProcessId(0),
                    Invocation::Append { block: id.unwrap() },
                    Time(t - 1),
                    Response::Appended(true),
                    Time(t),
                );
            }
        }
        let r = check_linearizable(&h, bt.store(), &LongestChain);
        prop_assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "sequential execution must linearize: {:?}", r
        );
    }

    // ── Sharded-selection merge laws (the two-stage drain contract) ─────

    /// `AuxPartial::merge` must be associative and order-insensitive, and
    /// the merged partial must not depend on how the batch was sharded at
    /// all: the subtree partition the drain uses, random chunkings, and
    /// per-insert singletons all fold to the same value. This is what lets
    /// stage 1 score shards independently and apply once.
    #[test]
    fn aux_partial_merge_is_associative_and_partition_insensitive(
        store in arb_store(50),
        chunk_seed in any::<u64>(),
    ) {
        use btadt_core::selection::{partition_by_subtree, AuxPartial, GhostWeight};

        // `arb_store` always mints at least one block past genesis.
        let inserts: Vec<BlockId> = store.ids().skip(1).collect();
        prop_assert!(!inserts.is_empty());
        let rules: Vec<Box<dyn SelectionFn>> = vec![
            Box::new(LongestChain),
            Box::new(HeaviestWork),
            Box::new(Ghost { weight: GhostWeight::BlockCount }),
            Box::new(Ghost { weight: GhostWeight::Work }),
        ];
        for rule in &rules {
            let fold = |shards: &[Vec<BlockId>]| -> AuxPartial {
                shards
                    .iter()
                    .map(|s| rule.score_inserts(&store, s))
                    .fold(AuxPartial::empty(), |acc, p| acc.merge(&store, p))
            };

            // The drain's subtree partition, folded forward.
            let subtree = partition_by_subtree(&store, &inserts);
            let baseline = fold(&subtree);

            // Order-insensitivity: reversed shard order.
            let reversed: Vec<Vec<BlockId>> =
                subtree.iter().rev().cloned().collect();
            prop_assert_eq!(&fold(&reversed), &baseline, "rule {}", rule.name());

            // Associativity: right fold over the same shards.
            let right = subtree
                .iter()
                .rev()
                .map(|s| rule.score_inserts(&store, s))
                .fold(AuxPartial::empty(), |acc, p| p.merge(&store, acc));
            prop_assert_eq!(&right, &baseline, "rule {} right fold", rule.name());

            // Partition-insensitivity: random chunking of the raw batch
            // (cuts derived from chunk_seed) and per-insert singletons.
            let mut chunks: Vec<Vec<BlockId>> = Vec::new();
            let mut i = 0usize;
            let mut step = 0u64;
            while i < inserts.len() {
                let w = 1 + (btadt_core::ids::splitmix64_at(chunk_seed, step) % 5) as usize;
                chunks.push(inserts[i..(i + w).min(inserts.len())].to_vec());
                i += w;
                step += 1;
            }
            prop_assert_eq!(&fold(&chunks), &baseline, "rule {} chunked", rule.name());

            let singletons: Vec<Vec<BlockId>> =
                inserts.iter().map(|&id| vec![id]).collect();
            prop_assert_eq!(
                &fold(&singletons), &baseline,
                "rule {} singletons", rule.name()
            );
        }
    }
}

// ── Ancestry edge cases (deterministic, no strategies needed) ───────────

#[test]
fn ancestry_edge_case_genesis() {
    let store = BlockStore::new();
    let g = BlockId::GENESIS;
    assert_eq!(store.ancestor_at(g, 0), g);
    assert_eq!(store.common_ancestor(g, g), g);
    assert!(store.is_ancestor(g, g));
    assert!(!store.is_empty());
}

#[test]
fn ancestry_edge_case_single_chain() {
    let mut store = BlockStore::new();
    let mut ids = vec![BlockId::GENESIS];
    for i in 0..200u64 {
        let prev = *ids.last().unwrap();
        ids.push(store.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty));
    }
    // Every (descendant, height) pair lands exactly on the chain.
    for h in [0u32, 1, 2, 63, 64, 65, 127, 128, 199, 200] {
        assert_eq!(store.ancestor_at(ids[200], h), ids[h as usize]);
    }
    // LCA on one chain is always the shallower block.
    assert_eq!(store.common_ancestor(ids[200], ids[37]), ids[37]);
    assert_eq!(store.common_ancestor(ids[3], ids[150]), ids[3]);
    assert!(store.is_ancestor(ids[1], ids[200]));
    assert!(!store.is_ancestor(ids[200], ids[1]));
}

#[test]
fn ancestry_edge_case_wide_fork() {
    // A star: 64 children directly under genesis, each with one child.
    let mut store = BlockStore::new();
    let mut leaves = Vec::new();
    for i in 0..64u64 {
        let mid = store.mint(BlockId::GENESIS, ProcessId(0), 0, 1, i * 2, Payload::Empty);
        leaves.push(store.mint(mid, ProcessId(1), 1, 1, i * 2 + 1, Payload::Empty));
    }
    for (i, &a) in leaves.iter().enumerate() {
        for &b in leaves.iter().skip(i + 1) {
            assert_eq!(store.common_ancestor(a, b), BlockId::GENESIS);
            assert!(!store.is_ancestor(a, b));
        }
        assert_eq!(store.ancestor_at(a, 0), BlockId::GENESIS);
        assert_eq!(store.common_ancestor(a, a), a);
    }
}
