//! Edge-case coverage for the consistency checkers: degenerate histories,
//! pending operations, work-based scores, and cut-boundary conditions.

use btadt_core::block::Payload;
use btadt_core::chain::Blockchain;
use btadt_core::criteria::{
    block_validity, check_eventual_consistency, check_strong_consistency, eventual_prefix,
    ever_growing_tree, local_monotonic_read, strong_prefix, ConsistencyParams, LivenessMode,
    Violation,
};
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::score::{LengthScore, WorkScore};
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;

fn linear_store(n: u32, work: u64) -> (BlockStore, Vec<BlockId>) {
    let mut s = BlockStore::new();
    let mut ids = vec![BlockId::GENESIS];
    for i in 0..n {
        let prev = *ids.last().unwrap();
        ids.push(s.mint(prev, ProcessId(0), 0, work, i as u64, Payload::Empty));
    }
    (s, ids)
}

fn read(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) {
    h.push_complete(
        ProcessId(p),
        Invocation::Read,
        Time(t0),
        Response::Chain(c),
        Time(t1),
    );
}

fn append(h: &mut History, b: BlockId, t: u64) {
    h.push_complete(
        ProcessId(7),
        Invocation::Append { block: b },
        Time(t),
        Response::Appended(true),
        Time(t + 1),
    );
}

#[test]
fn empty_history_satisfies_everything() {
    let (store, _) = linear_store(1, 1);
    let h = History::new();
    let params = ConsistencyParams {
        store: &store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(Time(10)),
    };
    assert!(check_strong_consistency(&h, &params).holds());
    assert!(check_eventual_consistency(&h, &params).holds());
}

#[test]
fn pending_reads_are_excluded_everywhere() {
    let (store, ids) = linear_store(2, 1);
    let mut h = History::new();
    append(&mut h, ids[1], 0);
    append(&mut h, ids[2], 2);
    read(&mut h, 0, 4, 5, Blockchain::from_tip(&store, ids[1]));
    // A pending read (no response) would be incomparable if completed with
    // a rogue chain — but pending invocations never count.
    h.push_invocation(ProcessId(1), Invocation::Read, Time(6));
    read(&mut h, 0, 20, 21, Blockchain::from_tip(&store, ids[2]));
    assert!(strong_prefix::check(&h).holds);
    assert!(block_validity::check(&h, &store, &AcceptAll).holds);
    let egt = ever_growing_tree::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
    assert!(egt.holds, "{egt}");
}

#[test]
fn work_score_criteria_differ_from_length() {
    // A heavy short chain out-scores a light long one under WorkScore:
    // Local Monotonic Read can pass under length yet fail under work.
    let mut s = BlockStore::new();
    let heavy = s.mint(BlockId::GENESIS, ProcessId(0), 0, 100, 1, Payload::Empty);
    let l1 = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 2, Payload::Empty);
    let l2 = s.mint(l1, ProcessId(1), 1, 1, 3, Payload::Empty);

    let mut h = History::new();
    read(&mut h, 0, 0, 1, Blockchain::from_tip(&s, heavy)); // work 100, len 1
    read(&mut h, 0, 2, 3, Blockchain::from_tip(&s, l2)); // work 2, len 2
    assert!(
        local_monotonic_read::check(&h, &LengthScore).holds,
        "lengths 1 then 2: monotone"
    );
    let ws = WorkScore::new(&s);
    let v = local_monotonic_read::check(&h, &ws);
    assert!(!v.holds, "work 100 then 2: non-monotonic under WorkScore");
}

#[test]
fn cut_exactly_at_response_time_is_inclusive() {
    let mut h = History::new();
    read(
        &mut h,
        0,
        0,
        10,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1)]),
    );
    read(
        &mut h,
        0,
        20,
        21,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1), BlockId(2)]),
    );
    // Cut at exactly t10: the first read is a reference (inclusive ≤).
    let v = ever_growing_tree::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
    assert!(v.holds, "{v}");
    // Cut at t9: the first read responds after the cut — no references, no
    // post-cut constraint beyond existence.
    let v = ever_growing_tree::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(9)));
    assert!(v.holds, "{v}");
}

#[test]
fn read_invoked_exactly_at_cut_is_not_post_cut() {
    let mut h = History::new();
    read(
        &mut h,
        0,
        0,
        1,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1)]),
    );
    // Invoked exactly at the cut (10): not strictly after ⇒ not a post-cut
    // read ⇒ the only post-cut material is the last read.
    read(
        &mut h,
        0,
        10,
        12,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1)]),
    );
    read(
        &mut h,
        0,
        15,
        16,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1), BlockId(2)]),
    );
    let v = ever_growing_tree::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
    assert!(v.holds, "straddling read is exempt: {v}");
}

#[test]
fn eventual_prefix_all_pairs_reported() {
    let mut h = History::new();
    read(
        &mut h,
        0,
        0,
        1,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1)]),
    );
    // Three divergent post-cut reads: 3 violating pairs.
    for (i, b) in [(0u32, 11u32), (1, 12), (2, 13)] {
        read(
            &mut h,
            i,
            20 + u64::from(i) * 2,
            21 + u64::from(i) * 2,
            Blockchain::from_ids(vec![BlockId(0), BlockId(b)]),
        );
    }
    let v = eventual_prefix::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
    assert!(!v.holds);
    assert_eq!(v.violations.len(), 3, "{v}");
}

#[test]
fn block_validity_multiple_violations_enumerated() {
    let (store, ids) = linear_store(3, 1);
    let mut h = History::new();
    // No appends at all: every non-genesis block unappended.
    read(&mut h, 0, 0, 1, Blockchain::from_tip(&store, ids[3]));
    let v = block_validity::check(&h, &store, &AcceptAll);
    assert_eq!(v.violations.len(), 3);
    assert!(v
        .violations
        .iter()
        .all(|x| matches!(x, Violation::UnappendedBlock { .. })));
}

#[test]
fn strong_prefix_duplicate_chains_are_fine() {
    let (store, ids) = linear_store(2, 1);
    let mut h = History::new();
    for t in 0..5u64 {
        read(
            &mut h,
            (t % 2) as u32,
            t * 10,
            t * 10 + 1,
            Blockchain::from_tip(&store, ids[2]),
        );
    }
    assert!(strong_prefix::check(&h).holds);
    assert!(strong_prefix::check_naive(&h).holds);
}

#[test]
fn genesis_only_reads_forever_is_strongly_consistent_vacuously() {
    // No appends, all reads return {b0}: SC with vacuous liveness.
    let (store, _) = linear_store(0, 1);
    let mut h = History::new();
    for t in 0..4u64 {
        read(&mut h, 0, t * 10, t * 10 + 1, Blockchain::genesis());
    }
    let params = ConsistencyParams {
        store: &store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::Vacuous,
    };
    assert!(check_strong_consistency(&h, &params).holds());
    // With a cut and no growth, EGT rightly complains.
    let params = ConsistencyParams {
        liveness: LivenessMode::ConvergenceCut(Time(15)),
        ..params
    };
    assert!(!check_strong_consistency(&h, &params).holds());
}

#[test]
fn verdict_display_truncates_long_witness_lists() {
    let mut h = History::new();
    read(
        &mut h,
        0,
        0,
        1,
        Blockchain::from_ids(vec![BlockId(0), BlockId(1)]),
    );
    for i in 0..8u32 {
        read(
            &mut h,
            i,
            20 + u64::from(i) * 2,
            21 + u64::from(i) * 2,
            Blockchain::from_ids(vec![BlockId(0), BlockId(100 + i)]),
        );
    }
    let v = eventual_prefix::check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
    let text = format!("{v}");
    assert!(text.contains("… and"), "long lists are truncated: {text}");
}
