//! Crash-recovery differential coverage for the durable commit log.
//!
//! Recovery is a *storage* transform: replaying the WAL must rebuild a
//! tree whose every membership-visible answer is bit-identical to the
//! tree that wrote it. The suite checks that from the outside:
//!
//! 1. a 20-seed differential — a fork-heavy concurrent workload (racing
//!    appenders plus explicit grafts) on a durable tree, hard-dropped
//!    (no shutdown hook exists, by design: every publication already
//!    fsynced), recovered, and compared answer-for-answer: commit log,
//!    selected chain, tip, meta/block, membership-filtered children,
//!    ancestry/LCA;
//! 2. a torn-tail case: the last segment truncated mid-record must trim
//!    to the acked prefix, not panic, and keep accepting appends;
//! 3. recover-then-continue: a recovered tree keeps appending, stays
//!    consistent, and survives a second recovery;
//! 4. compaction: checkpoints driven by the finality watermark drop
//!    covered segments without changing a single replayed answer.

use btadt_core::prelude::*;
use std::path::PathBuf;

/// Deterministic split-mix style generator (no external dependency).
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn tmp_wal_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "btadt-waldiff-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn members_of(log: &[BlockId]) -> std::collections::HashSet<BlockId> {
    let mut m: std::collections::HashSet<BlockId> = log.iter().copied().collect();
    m.insert(BlockId::GENESIS);
    m
}

/// Children restricted to committed members, in id order. Non-member
/// mints (orphans, losers) are not persisted — their ids come back as
/// genesis-parented ghosts — so only the membership-filtered view is
/// comparable across a crash.
fn member_children(
    store: &ShardedStore,
    id: BlockId,
    members: &std::collections::HashSet<BlockId>,
) -> Vec<BlockId> {
    let mut kids = Vec::new();
    store.for_each_child(id, &mut |c| {
        if members.contains(&c) {
            kids.push(c);
        }
    });
    kids.sort_unstable();
    kids
}

type Tree = ConcurrentBlockTree<LongestChain, AcceptAll>;

fn open_tree(dir: &std::path::Path, watermark: FinalityWatermark) -> Tree {
    ConcurrentBlockTree::open_durable(
        4,
        watermark,
        LongestChain,
        AcceptAll,
        WalConfig::new(dir).segment_bytes(4096),
    )
    .expect("WAL opens")
}

/// Fork-heavy concurrent workload: `threads` appenders racing `append`,
/// each occasionally grafting a fork under a random committed block.
fn run_workload(bt: &Tree, seed0: u64, threads: u64, per_thread: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut seed = seed0
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t * 0xC2B2_AE35)
                    | 1;
                for i in 0..per_thread {
                    let r = lcg(&mut seed);
                    let payload = match r % 3 {
                        0 => Payload::Empty,
                        1 => Payload::Opaque(r),
                        _ => Payload::Transactions(vec![Tx::new(
                            r,
                            (r % 7) as u32,
                            (r % 11) as u32,
                            r % 1000,
                        )]),
                    };
                    let cand = CandidateBlock::simple(ProcessId((r % 5) as u32), t << 32 | i)
                        .with_payload(payload)
                        .with_work(1 + r % 5);
                    if r.is_multiple_of(4) {
                        // A quarter of ops graft a fork off a random
                        // committed block instead of extending the tip.
                        let chain = bt.read_owned();
                        let ids = chain.ids();
                        let parent = ids[(lcg(&mut seed) as usize) % ids.len()];
                        let _ = bt.graft(parent, cand).expect("healthy WAL cannot poison");
                    } else {
                        bt.append(cand).expect("AcceptAll admits everything");
                    }
                }
            });
        }
    });
}

/// Everything recovery promises to reproduce, captured from a live tree.
struct Expected {
    commit_log: Vec<BlockId>,
    chain_ids: Vec<BlockId>,
    tip: BlockId,
    meta: Vec<(BlockId, BlockMeta)>,
    blocks: Vec<(BlockId, Block)>,
    children: Vec<(BlockId, Vec<BlockId>)>,
    ancestry: Vec<(BlockId, BlockId, bool, BlockId, BlockId)>,
}

fn capture(bt: &Tree, seed: &mut u64) -> Expected {
    let commit_log = bt.commit_log();
    let members = members_of(&commit_log);
    let chain = bt.read_owned();
    let store = bt.store();
    let mut ids: Vec<BlockId> = members.iter().copied().collect();
    ids.sort_unstable();
    let meta = ids.iter().map(|&id| (id, store.meta(id))).collect();
    let blocks = ids.iter().map(|&id| (id, store.block(id))).collect();
    let children = ids
        .iter()
        .map(|&id| (id, member_children(store, id, &members)))
        .collect();
    let mut ancestry = Vec::new();
    for _ in 0..200 {
        let a = ids[(lcg(seed) as usize) % ids.len()];
        let b = ids[(lcg(seed) as usize) % ids.len()];
        let cut = (lcg(seed) % (store.height(a) as u64 + 1)) as u32;
        ancestry.push((
            a,
            b,
            store.is_ancestor(a, b),
            store.common_ancestor(a, b),
            store.ancestor_at(a, cut),
        ));
    }
    Expected {
        commit_log,
        chain_ids: chain.ids().to_vec(),
        tip: chain.tip(),
        meta,
        blocks,
        children,
        ancestry,
    }
}

fn assert_matches(bt: &Tree, want: &Expected, ctx: &str) {
    assert_eq!(bt.commit_log(), want.commit_log, "{ctx}: commit log");
    let chain = bt.read_owned();
    assert_eq!(chain.ids(), &want.chain_ids[..], "{ctx}: selected chain");
    assert_eq!(chain.tip(), want.tip, "{ctx}: tip");
    assert_eq!(bt.selected_tip(), want.tip, "{ctx}: published tip");
    assert_eq!(
        bt.selected_tip_full_scan(),
        want.tip,
        "{ctx}: Def. 3.1 rescan tip"
    );
    let members = members_of(&want.commit_log);
    let store = bt.store();
    for (id, m) in &want.meta {
        assert_eq!(store.meta(*id), *m, "{ctx}: meta of {id}");
    }
    for (id, b) in &want.blocks {
        assert_eq!(store.block(*id), *b, "{ctx}: block of {id}");
    }
    for (id, kids) in &want.children {
        assert_eq!(
            member_children(store, *id, &members),
            *kids,
            "{ctx}: children of {id}"
        );
    }
    for &(a, b, is_anc, lca, cut_anc) in &want.ancestry {
        assert_eq!(store.is_ancestor(a, b), is_anc, "{ctx}: is_ancestor");
        assert_eq!(store.common_ancestor(a, b), lca, "{ctx}: LCA {a},{b}");
        let cut = store.height(cut_anc);
        assert_eq!(store.ancestor_at(a, cut), cut_anc, "{ctx}: ancestor_at");
    }
}

#[test]
fn recovery_is_bit_identical_across_seeds() {
    for seed0 in 0..20u64 {
        let dir = tmp_wal_dir("seeds");
        let mut seed = seed0.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
        let want = {
            let bt = open_tree(&dir, FinalityWatermark::disabled());
            run_workload(&bt, seed0, 3, 60);
            let stats = bt.wal_stats().expect("durable tree");
            let log = bt.commit_log();
            assert_eq!(stats.records, log.len() as u64, "every commit logged");
            capture(&bt, &mut seed)
            // Hard drop — no flush hook exists, and none is needed:
            // every publication already fsynced before any ack.
        };
        let bt = open_tree(&dir, FinalityWatermark::disabled());
        assert_matches(&bt, &want, &format!("seed {seed0}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn torn_tail_is_trimmed_to_the_acked_prefix() {
    let dir = tmp_wal_dir("torn");
    let want = {
        let bt = open_tree(&dir, FinalityWatermark::disabled());
        for i in 0..50u64 {
            bt.append(CandidateBlock::simple(ProcessId((i % 3) as u32), i))
                .unwrap();
        }
        bt.commit_log()
    };
    // Truncate the highest-numbered segment mid-record: the torn suffix
    // simulates a crash inside an append_commits that never acked.
    let last_seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .max()
        .expect("a segment exists");
    let data = std::fs::read(&last_seg).unwrap();
    std::fs::write(&last_seg, &data[..data.len() - 5]).unwrap();
    let bt = open_tree(&dir, FinalityWatermark::disabled());
    let log = bt.commit_log();
    assert_eq!(log.len(), want.len() - 1, "exactly the torn record is gone");
    assert_eq!(log[..], want[..log.len()], "recovered log is a prefix");
    let stats = bt.wal_stats().unwrap();
    assert!(stats.trimmed_bytes > 0, "the trim was recorded");
    // The trimmed tree is fully serviceable: appends go through and the
    // chain re-extends past the lost block.
    for i in 100..140u64 {
        bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
    }
    assert_eq!(bt.commit_log().len(), want.len() - 1 + 40);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_trees_keep_appending_and_survive_a_second_crash() {
    let dir = tmp_wal_dir("continue");
    let mut seed = 7u64;
    {
        let bt = open_tree(&dir, FinalityWatermark::disabled());
        run_workload(&bt, 3, 2, 40);
    }
    let want = {
        let bt = open_tree(&dir, FinalityWatermark::disabled());
        // Continue the workload on the recovered tree: fresh mints must
        // slot in above the recovered id space (ghosts included).
        run_workload(&bt, 4, 2, 40);
        let log = bt.commit_log();
        assert!(log.len() >= 160, "both rounds committed");
        capture(&bt, &mut seed)
    };
    let bt = open_tree(&dir, FinalityWatermark::disabled());
    assert_matches(&bt, &want, "second recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A brand-new durable tree must look exactly like a brand-new volatile
/// tree to generation watchers: generation 0, and `wait_commit_past(0)`
/// parks until a real commit lands instead of returning immediately
/// (the recovery path bumps the generation only when records were
/// actually replayed).
#[test]
fn fresh_durable_trees_start_at_generation_zero() {
    let dir = tmp_wal_dir("gen0");
    let bt = open_tree(&dir, FinalityWatermark::disabled());
    assert_eq!(
        bt.commit_generation(),
        ConcurrentBlockTree::new(LongestChain, AcceptAll).commit_generation(),
        "fresh durable == fresh volatile"
    );
    assert_eq!(bt.commit_generation(), 0);
    let t0 = std::time::Instant::now();
    let wait = std::time::Duration::from_millis(50);
    bt.wait_commit_past(0, t0 + wait);
    assert!(
        t0.elapsed() >= wait,
        "no publication ever happened: the waiter must park to deadline"
    );
    bt.append(CandidateBlock::simple(ProcessId(0), 1)).unwrap();
    assert!(bt.commit_generation() > 0, "real commits still advance it");
    // And a tree recovered from a non-empty log starts past zero, one
    // generation per historical publication as before.
    drop(bt);
    let bt = open_tree(&dir, FinalityWatermark::disabled());
    assert_eq!(bt.commit_generation(), 2, "1 replayed record + 1");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_drops_segments_without_changing_answers() {
    let dir = tmp_wal_dir("compact");
    let mut seed = 11u64;
    let want = {
        let bt = ConcurrentBlockTree::open_durable(
            4,
            // A tight watermark finalizes aggressively, so the
            // checkpoint cursor advances and compaction actually runs.
            FinalityWatermark::new(8),
            LongestChain,
            AcceptAll,
            WalConfig::new(&dir)
                .segment_bytes(1024)
                .checkpoint_interval(64),
        )
        .unwrap();
        for i in 0..600u64 {
            bt.append(CandidateBlock::simple(ProcessId((i % 3) as u32), i))
                .unwrap();
        }
        let stats = bt.wal_stats().unwrap();
        assert!(stats.checkpoints >= 1, "compaction checkpointed: {stats:?}");
        assert!(
            stats.segments_dropped >= 1,
            "covered segments were deleted: {stats:?}"
        );
        capture(&bt, &mut seed)
    };
    let bt = open_tree(&dir, FinalityWatermark::new(8));
    assert_matches(&bt, &want, "post-compaction recovery");
    // Flattening is incremental and rides commit paths; after a few
    // appends the recovered tree re-flattens its finalized prefix.
    for i in 1000..1010u64 {
        bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
    }
    while bt.store().flatten_some(64) > 0 {}
    assert!(
        bt.store().flattened_count() > 0,
        "recovered tree re-flattens its finalized prefix"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
