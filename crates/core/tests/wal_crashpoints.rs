//! The crash-point matrix: every VFS operation a durable workload
//! performs is a place the power can go out, and at every single one of
//! them the tree must come back with the acked prefix intact.
//!
//! The suite runs one canonical deterministic workload (fixed appends,
//! forks via graft, segment rotation, watermark-driven checkpoints)
//! over a [`FaultVfs`] and then:
//!
//! 1. **pins the enumeration** — the total op count and per-kind
//!    histogram are asserted as constants, so adding (or removing) an
//!    IO site in `wal.rs` fails this test and forces the matrix to be
//!    re-audited;
//! 2. **crashes at every op index** — the op fails and the device is
//!    dead from there on; the workload must degrade (typed
//!    [`DurabilityError`], never a panic, never an ack the log cannot
//!    back), and recovery after power loss must reproduce exactly the
//!    acked prefix;
//! 3. **sweeps every torn-tail byte boundary** — at each crash point
//!    the unsynced tail is kept at every possible length, plus a
//!    bit-flipped worst case, and recovery must still trim to the
//!    acked prefix;
//! 4. **double-crashes** — a second crash injected at every op of
//!    *recovery itself* (checkpoint rewrite, torn-tail trim, segment
//!    unlink), then a clean second recovery; and recovery is
//!    idempotent (recovering twice answers identically);
//! 5. **replays from a seed** — `FaultConfig::seeded(s)` mid-workload
//!    fsync failures poison the tree deterministically: same seed,
//!    same acks, same error, twice.

use btadt_core::prelude::*;
use btadt_core::vfs::OpKind;

/// WAL directory inside the in-memory [`FaultVfs`].
const WAL_DIR: &str = "/cp/wal";

/// Appends (and grafts) the canonical workload performs.
const WORKLOAD_BLOCKS: u64 = 14;

/// Total VFS operations the canonical workload performs on a fresh
/// directory, healthy device. **Pinned**: if this changes, an IO site
/// was added or removed in the WAL/checkpoint path — re-audit the
/// matrix (the other tests enumerate `0..WORKLOAD_OPS`), then update
/// the constant and [`WORKLOAD_HISTOGRAM`].
const WORKLOAD_OPS: u64 = 46;

/// Per-kind op counts of the canonical workload, sorted by kind.
/// Pinned for the same reason as [`WORKLOAD_OPS`]. Reading the trace:
/// one mkdir + stale-tmp unlink + checkpoint read (`NotFound`) +
/// segment listing on open; one `create_new`+`sync_dir` per segment
/// (the initial segment plus one rotation); one write+`sync_data` per
/// publication (14 blocks, group commit) plus one frame write per
/// record sharing a batch; two checkpoints, each a
/// truncate+write+`sync_all`+rename+`sync_dir`.
const WORKLOAD_HISTOGRAM: &[(OpKind, u64)] = &[
    (OpKind::CreateDirAll, 1),
    (OpKind::Read, 1),
    (OpKind::ReadDir, 1),
    (OpKind::CreateNew, 2),
    (OpKind::CreateTruncate, 2),
    (OpKind::Rename, 2),
    (OpKind::RemoveFile, 1),
    (OpKind::SyncDir, 4),
    (OpKind::Write, 16),
    (OpKind::SyncData, 14),
    (OpKind::SyncAll, 2),
];

type Tree = ConcurrentBlockTree<LongestChain, AcceptAll>;

/// Small segments force rotation; a shallow watermark plus a short
/// checkpoint interval forces checkpoint rewrites and segment trims —
/// together the workload exercises every IO site the WAL has.
fn open_tree(vfs: &FaultVfs) -> std::io::Result<Tree> {
    ConcurrentBlockTree::open_durable(
        2,
        FinalityWatermark::new(2),
        LongestChain,
        AcceptAll,
        WalConfig::new(WAL_DIR)
            .segment_bytes(512)
            .checkpoint_interval(4)
            .vfs(vfs.as_dyn()),
    )
}

/// Runs the canonical workload. Returns the ids acked (in ack order ==
/// commit-log order: the workload is single-threaded) and the first
/// durability error observed, if any. Panics if an ack arrives *after*
/// an error — the one thing a degraded tree must never do.
fn run_workload(bt: &Tree) -> (Vec<BlockId>, Option<DurabilityError>) {
    let mut acked = Vec::new();
    let mut first_err: Option<DurabilityError> = None;
    for i in 0..WORKLOAD_BLOCKS {
        let cand =
            CandidateBlock::simple(ProcessId((i % 3) as u32), 0xA000 + i).with_work(1 + i % 4);
        let res = if i % 5 == 3 && !acked.is_empty() {
            // Fork off an already-committed block: exercises the graft
            // publication path alongside the append fast path.
            let parent = acked[(i as usize * 7) % acked.len()];
            bt.graft(parent, cand)
        } else {
            bt.append(cand)
        };
        match res {
            Ok(Some(id)) => {
                assert!(
                    first_err.is_none(),
                    "block {i} acked after durability error {first_err:?}"
                );
                acked.push(id);
            }
            Ok(None) => panic!("AcceptAll rejects nothing (block {i})"),
            Err(e) => {
                assert!(
                    bt.is_poisoned(),
                    "append returned {e:?} but the tree is not poisoned"
                );
                first_err.get_or_insert(e);
            }
        }
    }
    (acked, first_err)
}

/// Opens the tree and runs the workload, tolerating a crash anywhere:
/// open itself may fail (crash during open/recovery), and the workload
/// may degrade mid-way. Returns whatever was acked.
fn run_to_crash(vfs: &FaultVfs) -> Vec<BlockId> {
    match open_tree(vfs) {
        Err(_) => Vec::new(),
        Ok(bt) => run_workload(&bt).0,
    }
}

/// The durability contract, checked from the outside: after power loss
/// and recovery, the commit log starts with exactly the acked sequence.
/// (It may be longer — records written and synced but whose covering
/// publication never acked are allowed to survive; they were valid.)
fn assert_acked_prefix(recovered: &Tree, acked: &[BlockId], ctx: &str) {
    let log = recovered.commit_log();
    assert!(
        log.len() >= acked.len(),
        "{ctx}: recovered log ({} records) lost acked records ({})",
        log.len(),
        acked.len()
    );
    assert_eq!(&log[..acked.len()], acked, "{ctx}: acked prefix mutated");
}

fn recover(vfs: &FaultVfs, ctx: &str) -> Tree {
    open_tree(vfs).unwrap_or_else(|e| panic!("{ctx}: recovery must succeed, got {e}"))
}

#[test]
fn enumeration_is_pinned_and_covers_every_wal_io_site() {
    let vfs = FaultVfs::new(FaultConfig::new());
    let bt = open_tree(&vfs).expect("healthy open");
    let (acked, err) = run_workload(&bt);
    assert_eq!(err, None, "healthy device cannot poison");
    assert_eq!(acked.len(), WORKLOAD_BLOCKS as usize);
    drop(bt);

    let trace = vfs.trace();
    let mut histogram: std::collections::BTreeMap<OpKind, u64> = std::collections::BTreeMap::new();
    for rec in &trace {
        *histogram.entry(rec.kind).or_insert(0) += 1;
    }
    let got: Vec<(OpKind, u64)> = histogram.into_iter().collect();
    let mut want = WORKLOAD_HISTOGRAM.to_vec();
    want.sort();
    assert_eq!(
        got, want,
        "WAL IO sites changed: update WORKLOAD_OPS/WORKLOAD_HISTOGRAM and re-audit the matrix"
    );
    assert_eq!(
        vfs.op_count(),
        WORKLOAD_OPS,
        "trace length drifted from pin"
    );
    assert_eq!(trace.len() as u64, WORKLOAD_OPS);

    // Group commit means exactly one data fsync per publication: every
    // acked block is covered by a sync that happened before its ack.
    let syncs = want.iter().find(|(k, _)| *k == OpKind::SyncData).unwrap().1;
    assert!(
        syncs >= WORKLOAD_BLOCKS,
        "fewer data fsyncs than publications"
    );
}

#[test]
fn crash_at_every_op_preserves_the_acked_prefix() {
    for at in 0..WORKLOAD_OPS {
        let vfs = FaultVfs::new(FaultConfig::crash_at(at));
        let acked = run_to_crash(&vfs);
        assert!(vfs.crashed(), "crash point {at} never fired");
        vfs.power_loss(TornTail::DropAll);
        let rec = recover(&vfs, &format!("crash at op {at}"));
        assert_acked_prefix(&rec, &acked, &format!("crash at op {at}"));
        // The recovered tree is live, not read-only: degradation ends
        // with the incarnation that hit the fault.
        let id = rec
            .append(CandidateBlock::simple(ProcessId(9), 0xF00D + at))
            .expect("recovered tree is healthy")
            .expect("AcceptAll admits everything");
        assert!(rec.is_committed(id));
    }
}

#[test]
fn torn_tail_byte_sweep_preserves_the_acked_prefix() {
    for at in 0..WORKLOAD_OPS {
        let vfs = FaultVfs::new(FaultConfig::crash_at(at));
        let acked = run_to_crash(&vfs);
        let tail = vfs.unsynced_tail_len();
        // Every byte boundary of the unsynced tail: the device persisted
        // 0..=tail bytes past the last fsync before dying.
        for keep in 0..=tail {
            let img = vfs.fork();
            img.power_loss(TornTail::Keep(keep));
            let ctx = format!("crash at op {at}, torn tail keep {keep}/{tail}");
            let rec = recover(&img, &ctx);
            assert_acked_prefix(&rec, &acked, &ctx);
        }
        // Worst case: the tail survives torn *and* the last sector is
        // mangled — CRC framing must reject it, not replay garbage.
        for keep in [1, tail.max(1)] {
            if tail == 0 {
                break;
            }
            let img = vfs.fork();
            img.power_loss(TornTail::KeepScrambled(keep));
            let ctx = format!("crash at op {at}, scrambled tail keep {keep}/{tail}");
            let rec = recover(&img, &ctx);
            assert_acked_prefix(&rec, &acked, &ctx);
        }
    }
}

#[test]
fn double_crash_during_recovery_then_recovery_is_idempotent() {
    // Phase 1: the workload with every checkpoint attempt failed (a
    // checkpoint failure is non-fatal and merely counted), then power
    // loss. The durable image therefore carries an uncompacted log
    // whose checkpoint *recovery* must rewrite — putting the rewrite
    // and the segment trim inside the double-crash window.
    let mut no_checkpoints = FaultConfig::new();
    for nth in 1..=16 {
        no_checkpoints =
            no_checkpoints.rule(FaultRule::new(OpKind::CreateTruncate, nth, FaultKind::Eio));
    }
    let vfs = FaultVfs::new(no_checkpoints);
    let bt = open_tree(&vfs).expect("healthy open");
    let (acked, err) = run_workload(&bt);
    assert_eq!(err, None, "checkpoint failures must not poison");
    let stats = bt.wal_stats().expect("durable tree has stats");
    assert!(
        stats.checkpoint_failures >= 1,
        "the injected checkpoint faults were never attempted"
    );
    drop(bt);
    vfs.power_loss(TornTail::DropAll);
    let base = vfs.fork();

    // Probe: count recovery's own IO and check it exercises the sites
    // the double-crash is about — the checkpoint rewrite (truncate +
    // rename) and segment trim (unlink) that recovery performs after
    // replay.
    let probe = base.fork();
    let rec = recover(&probe, "probe recovery");
    assert_acked_prefix(&rec, &acked, "probe recovery");
    drop(rec);
    let recovery_ops = probe.op_count();
    let kinds: std::collections::BTreeSet<OpKind> = probe.trace().iter().map(|r| r.kind).collect();
    for k in [OpKind::CreateTruncate, OpKind::Rename, OpKind::RemoveFile] {
        assert!(
            kinds.contains(&k),
            "recovery does not exercise {k:?}; the double-crash matrix lost coverage"
        );
    }

    // Phase 2: crash recovery at every one of its own ops, then recover
    // again cleanly. The acked prefix must survive both crashes.
    for at in 0..recovery_ops {
        let img = base.fork();
        img.arm(FaultConfig::crash_at(at));
        match open_tree(&img) {
            Err(_) => {}
            Ok(bt) => {
                // Recovery survived the fault (it hit a non-fatal site,
                // e.g. a checkpoint rewrite or an unlink); the tree may
                // be degraded but must still hold the acked prefix.
                assert_acked_prefix(&bt, &acked, &format!("recovery crash at op {at}"));
            }
        }
        img.power_loss(TornTail::DropAll);
        let ctx = format!("second recovery after recovery crash at op {at}");
        let rec = recover(&img, &ctx);
        assert_acked_prefix(&rec, &acked, &ctx);
    }

    // Phase 3: recovery is idempotent — two clean recoveries in a row
    // answer identically.
    let img = base.fork();
    let first = recover(&img, "idempotence, first recovery");
    let (log1, tip1) = (first.commit_log(), first.read_owned().tip());
    drop(first);
    let second = recover(&img, "idempotence, second recovery");
    assert_eq!(second.commit_log(), log1, "second recovery changed the log");
    assert_eq!(
        second.read_owned().tip(),
        tip1,
        "second recovery moved the tip"
    );
}

#[test]
fn seeded_fsync_failures_poison_deterministically() {
    for seed in 1..=8u64 {
        let run = || {
            let vfs = FaultVfs::new(FaultConfig::seeded(seed));
            let bt = open_tree(&vfs).expect("seeded faults hit data fsyncs, not open");
            let (acked, err) = run_workload(&bt);
            let poisoned = bt.is_poisoned();
            let tree_err = bt.durability_error();
            drop(bt);
            (acked, err, poisoned, tree_err, vfs)
        };
        let (acked, err, poisoned, tree_err, vfs) = run();

        // The workload publishes more batches than the seeded rule's
        // maximum position, so the fault always fires: a typed error,
        // a poisoned tree, never a panic.
        let e = err.unwrap_or_else(|| panic!("seed {seed}: fault never surfaced"));
        assert!(
            matches!(e, DurabilityError::PersistFailed { .. }),
            "seed {seed}: {e:?}"
        );
        assert!(poisoned, "seed {seed}: error without poisoning");
        assert_eq!(tree_err, Some(e), "seed {seed}: first error not retained");

        // Replay: the same seed reproduces the same run, ack for ack.
        let (acked2, err2, _, _, _) = run();
        assert_eq!(acked2, acked, "seed {seed}: acks diverged on replay");
        assert_eq!(err2, Some(e), "seed {seed}: error diverged on replay");

        // And the degraded incarnation still honored the contract: its
        // acked prefix survives power loss.
        vfs.power_loss(TornTail::DropAll);
        let rec = recover(&vfs, &format!("seed {seed}"));
        assert_acked_prefix(&rec, &acked, &format!("seed {seed}"));
    }
}

#[test]
fn short_write_mid_record_poisons_and_recovery_trims() {
    // Tear the 7th data write after 3 bytes: a record frame lands
    // partially in the page cache, then the op fails. fsyncgate rule:
    // the file is dirty with unknown content — poison, never retry.
    let vfs = FaultVfs::new(FaultConfig::fail_nth(
        OpKind::Write,
        7,
        FaultKind::ShortWrite { written: 3 },
    ));
    let bt = open_tree(&vfs).expect("open performs no data writes");
    let (acked, err) = run_workload(&bt);
    let e = err.expect("the torn write must surface");
    assert!(matches!(e, DurabilityError::PersistFailed { .. }));
    assert!(bt.is_poisoned());
    drop(bt);

    // Keep the whole torn tail: recovery must trim the partial frame
    // (CRC framing), not replay it, and the acked prefix survives.
    let tail = vfs.unsynced_tail_len();
    vfs.power_loss(TornTail::Keep(tail));
    let rec = recover(&vfs, "short write");
    assert_acked_prefix(&rec, &acked, "short write");
}
