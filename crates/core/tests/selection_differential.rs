//! Differential tests: the incremental selection path (`on_insert` +
//! `ChainCache`) must agree bit-for-bit with the full-scan `select_tip`
//! oracle of Def. 3.1 — on every insert of randomized fork-heavy
//! workloads, for every shipped selection rule. This is what preserves
//! the paper's hierarchy/criteria results across the performance
//! refactor: every consistency checker consumes chains produced by
//! `read()`, and `read()` now comes off the cache.
//!
//! Two workload shapes:
//!
//! * **mint-order**: blocks join the membership the moment they are
//!   minted, with parents biased toward recent blocks (long competing
//!   branches) but free to hit any block (wide shallow forks);
//! * **shuffled delivery**: the tree is minted first, then membership
//!   inserts replay in a random parent-closed order — the shape replicas
//!   see under out-of-order networks, where consecutive inserts land in
//!   unrelated subtrees.
//!
//! Combined, the two scenarios exceed 1000 distinct random sequences.

use btadt_core::block::Payload;
use btadt_core::chain::Blockchain;
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId};
use btadt_core::selection::{Ghost, GhostWeight, HeaviestWork, LongestChain, SelectionFn};
use btadt_core::store::{BlockStore, TreeMembership};
use btadt_core::tipcache::ChainCache;

fn rules() -> Vec<(&'static str, Box<dyn SelectionFn>)> {
    vec![
        ("longest", Box::new(LongestChain)),
        ("heaviest", Box::new(HeaviestWork)),
        (
            "ghost-count",
            Box::new(Ghost {
                weight: GhostWeight::BlockCount,
            }),
        ),
        (
            "ghost-work",
            Box::new(Ghost {
                weight: GhostWeight::Work,
            }),
        ),
    ]
}

/// Draw the parent for the next mint: half the time a recent block (deep
/// competing branches), otherwise any block (wide forks near the root).
fn pick_parent(seed: u64, step: u64, minted: &[BlockId]) -> BlockId {
    let r = splitmix64_at(seed ^ 0x9A_2E17, step);
    let idx = if r & 1 == 0 {
        let window = minted.len().min(5);
        minted.len() - 1 - (r as usize >> 1) % window
    } else {
        (r as usize >> 1) % minted.len()
    };
    minted[idx]
}

/// One mint-order sequence: returns how many inserts were checked.
fn run_mint_order_sequence(seed: u64) -> usize {
    let n_blocks = 24 + (splitmix64_at(seed, 0) % 40) as usize;
    let mut store = BlockStore::new();
    let mut tree = TreeMembership::genesis_only();
    let rules = rules();
    let mut caches: Vec<ChainCache> = rules.iter().map(|_| ChainCache::new()).collect();
    let mut minted = vec![BlockId::GENESIS];

    for step in 0..n_blocks as u64 {
        let parent = pick_parent(seed, step, &minted);
        let work = 1 + splitmix64_at(seed ^ 0x3052, step) % 4;
        let b = store.mint(
            parent,
            ProcessId((step % 4) as u32),
            (step % 4) as u32,
            work,
            step,
            Payload::Empty,
        );
        minted.push(b);
        tree.insert(&store, b);
        for ((name, rule), cache) in rules.iter().zip(caches.iter_mut()) {
            cache.on_insert(rule.as_ref(), &store, &tree, b);
            let oracle_tip = rule.select_tip(&store, &tree);
            assert_eq!(
                cache.tip(),
                oracle_tip,
                "seed {seed} step {step}: incremental {name} diverged from full scan"
            );
            assert_eq!(
                cache.chain(),
                Blockchain::from_tip(&store, oracle_tip),
                "seed {seed} step {step}: cached {name} chain diverged"
            );
        }
    }
    n_blocks
}

/// One shuffled-delivery sequence: mint the whole tree, then insert the
/// membership in a random parent-closed order.
fn run_shuffled_sequence(seed: u64) -> usize {
    let n_blocks = 20 + (splitmix64_at(seed, 1) % 30) as usize;
    let mut store = BlockStore::new();
    let mut minted = vec![BlockId::GENESIS];
    for step in 0..n_blocks as u64 {
        let parent = pick_parent(seed, step, &minted);
        let work = 1 + splitmix64_at(seed ^ 0x3053, step) % 4;
        minted.push(store.mint(
            parent,
            ProcessId((step % 3) as u32),
            (step % 3) as u32,
            work,
            step,
            Payload::Empty,
        ));
    }

    let mut tree = TreeMembership::genesis_only();
    let rules = rules();
    let mut caches: Vec<ChainCache> = rules.iter().map(|_| ChainCache::new()).collect();
    // Ready set: minted blocks whose parent is already a member.
    let mut pending: Vec<BlockId> = minted[1..].to_vec();
    let mut step = 0u64;
    while !pending.is_empty() {
        let ready: Vec<usize> = (0..pending.len())
            .filter(|&i| {
                store
                    .parent(pending[i])
                    .map(|p| tree.contains(p))
                    .unwrap_or(true)
            })
            .collect();
        let pick = ready[(splitmix64_at(seed ^ 0x5417, step) as usize) % ready.len()];
        let b = pending.swap_remove(pick);
        tree.insert(&store, b);
        for ((name, rule), cache) in rules.iter().zip(caches.iter_mut()) {
            cache.on_insert(rule.as_ref(), &store, &tree, b);
            let oracle_tip = rule.select_tip(&store, &tree);
            assert_eq!(
                cache.tip(),
                oracle_tip,
                "seed {seed} delivery {step}: incremental {name} diverged from full scan"
            );
        }
        step += 1;
    }
    n_blocks
}

#[test]
fn incremental_matches_full_scan_on_mint_order_workloads() {
    let mut inserts = 0;
    for seed in 0..800u64 {
        inserts += run_mint_order_sequence(seed);
    }
    assert!(
        inserts > 10_000,
        "workload should be substantial: {inserts}"
    );
}

#[test]
fn incremental_matches_full_scan_on_shuffled_delivery() {
    let mut inserts = 0;
    for seed in 0..300u64 {
        inserts += run_shuffled_sequence(0xD15_7269 ^ seed);
    }
    assert!(inserts > 5_000, "workload should be substantial: {inserts}");
}

/// The same agreement through the public `BlockTree` API, mixing tip
/// appends with explicit forks via `graft`, and checking the `read()`
/// output (the externally observable surface of Def. 3.1).
#[test]
fn blocktree_reads_match_full_scan_under_grafted_forks() {
    use btadt_core::blocktree::{BlockTree, CandidateBlock};
    use btadt_core::validity::AcceptAll;

    for seed in 0..120u64 {
        let mut bt = BlockTree::new(LongestChain, AcceptAll);
        let mut ids = vec![BlockId::GENESIS];
        for step in 0..60u64 {
            let r = splitmix64_at(seed ^ 0xB10C7, step);
            let id = if r.is_multiple_of(3) {
                // Fork: graft under an arbitrary known block.
                let parent = ids[(r as usize >> 8) % ids.len()];
                bt.graft(parent, CandidateBlock::simple(ProcessId(0), step))
            } else {
                let before = bt.store().len();
                bt.append(CandidateBlock::simple(ProcessId(1), step));
                Some(BlockId(before as u32))
            };
            if let Some(id) = id {
                ids.push(id);
            }
            assert_eq!(
                bt.selected_tip(),
                bt.selected_tip_full_scan(),
                "seed {seed} step {step}: BlockTree cache diverged"
            );
            assert_eq!(
                bt.read(),
                Blockchain::from_tip(bt.store(), bt.selected_tip_full_scan()),
                "seed {seed} step {step}: read() diverged from Def. 3.1"
            );
        }
    }
}

/// The concurrent↔sequential differential: race threads on a
/// `ConcurrentBlockTree`, then replay the run's committed insert order
/// into the sequential machinery (snapshot arena + `TreeMembership` +
/// `ChainCache`) and demand the identical final tip and chain — per rule,
/// with the full-scan `select_tip` as the ultimate oracle at every step.
fn concurrent_replay_matches_sequential<F: btadt_core::selection::SelectionFn + Clone>(
    rule: F,
    seed: u64,
) {
    use btadt_core::blocktree::CandidateBlock;
    use btadt_core::concurrent::ConcurrentBlockTree;
    use btadt_core::validity::AcceptAll;

    let cbt = ConcurrentBlockTree::new(rule.clone(), AcceptAll);
    std::thread::scope(|s| {
        // Two appenders extending the selected tip…
        for t in 0..2u32 {
            let cbt = &cbt;
            s.spawn(move || {
                for i in 0..25u64 {
                    let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                    let cand = CandidateBlock::simple(ProcessId(t), ((t as u64) << 32) | i)
                        .with_work(1 + r % 4);
                    cbt.append(cand).expect("AcceptAll");
                }
            });
        }
        // …and two fork builders grafting at random depths of the
        // published chain (real reorg pressure for heaviest/GHOST).
        for t in 2..4u32 {
            let cbt = &cbt;
            s.spawn(move || {
                for i in 0..25u64 {
                    let chain = cbt.read();
                    let ids = chain.ids();
                    let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                    let parent = ids[(r as usize >> 3) % ids.len()];
                    let cand = CandidateBlock::simple(ProcessId(t), ((t as u64) << 32) | i)
                        .with_work(1 + r % 4);
                    cbt.graft(parent, cand).expect("AcceptAll");
                }
            });
        }
    });

    let store = cbt.snapshot_store();
    let log = cbt.commit_log();
    assert_eq!(log.len(), 100, "every commit recorded");

    let mut tree = TreeMembership::genesis_only();
    let mut cache = ChainCache::new();
    for (step, &id) in log.iter().enumerate() {
        tree.insert(&store, id);
        cache.on_insert(&rule, &store, &tree, id);
        assert_eq!(
            cache.tip(),
            rule.select_tip(&store, &tree),
            "seed {seed} step {step}: replay diverged from full scan"
        );
    }
    assert_eq!(
        cache.tip(),
        cbt.selected_tip(),
        "seed {seed}: sequential replay tip ≠ concurrent tip"
    );
    assert_eq!(
        cache.chain(),
        cbt.read_owned(),
        "seed {seed}: sequential replay chain ≠ concurrent published chain"
    );
    assert_eq!(cbt.selected_tip(), cbt.selected_tip_full_scan());
}

#[test]
fn concurrent_runs_replay_to_identical_selection_longest() {
    for seed in 0..8u64 {
        concurrent_replay_matches_sequential(LongestChain, seed);
    }
}

#[test]
fn concurrent_runs_replay_to_identical_selection_heaviest() {
    for seed in 0..8u64 {
        concurrent_replay_matches_sequential(HeaviestWork, 0xC0FFEE ^ seed);
    }
}

#[test]
fn concurrent_runs_replay_to_identical_selection_ghost() {
    for seed in 0..8u64 {
        concurrent_replay_matches_sequential(
            Ghost {
                weight: GhostWeight::BlockCount,
            },
            0x6057 ^ seed,
        );
        concurrent_replay_matches_sequential(
            Ghost {
                weight: GhostWeight::Work,
            },
            0x6058 ^ seed,
        );
    }
}

/// Mixed inline/staged commits replay identically: a solo phase (every
/// append takes the uncontended inline fast path — no queue) followed by
/// a contended phase (appends race, some riding the staged queue), then
/// the whole commit log replays through the sequential machinery to the
/// identical chain. The pipeline counters prove both paths actually ran;
/// the replay proves the paths are observationally one.
#[test]
fn mixed_inline_and_staged_commits_replay_identically() {
    use btadt_core::blocktree::CandidateBlock;
    use btadt_core::concurrent::ConcurrentBlockTree;
    use btadt_core::validity::AcceptAll;

    for seed in 0..6u64 {
        let cbt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        // Solo phase: 30 appends from one thread — all inline.
        for i in 0..30u64 {
            cbt.append(CandidateBlock::simple(ProcessId(0), i).with_work(1 + (seed + i) % 3))
                .expect("AcceptAll");
        }
        let solo = cbt.pipeline_stats();
        assert_eq!(solo.inline_appends, 30, "seed {seed}: solo phase is inline");
        assert_eq!(
            solo.batched_appends, 0,
            "seed {seed}: solo phase never queues"
        );
        // Contended phase: 4 racing appenders — inline when the lock is
        // free, staged when a drainer holds it (the split depends on the
        // scheduler; the sum may not).
        std::thread::scope(|s| {
            for t in 1..5u32 {
                let cbt = &cbt;
                s.spawn(move || {
                    for i in 0..20u64 {
                        let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                        let cand = CandidateBlock::simple(ProcessId(t), ((t as u64) << 32) | i)
                            .with_work(1 + r % 4);
                        cbt.append(cand).expect("AcceptAll");
                    }
                });
            }
        });
        let stats = cbt.pipeline_stats();
        assert_eq!(
            stats.inline_appends + stats.batched_appends,
            110,
            "seed {seed}: every append resolved on exactly one path"
        );
        // Replay the commit log sequentially: both paths linearized into
        // one insert order that reproduces the published chain.
        let store = cbt.snapshot_store();
        let log = cbt.commit_log();
        assert_eq!(log.len(), 110, "seed {seed}");
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        for &id in &log {
            tree.insert(&store, id);
            cache.on_insert(&LongestChain, &store, &tree, id);
        }
        assert_eq!(
            cache.chain(),
            cbt.read_owned(),
            "seed {seed}: mixed-path replay diverged from the published chain"
        );
        assert_eq!(
            cbt.selected_tip(),
            cbt.selected_tip_full_scan(),
            "seed {seed}"
        );
    }
}

/// The two-stage drain's sharded scoring: partition each drained batch by
/// subtree, score the shards independently, fold them with the
/// associative `merge`, apply once — and land exactly where the serial
/// per-insert `on_insert` fold lands, which is itself held to the
/// full-scan `select_tip` oracle. 20 seeds of fork-heavy random batches,
/// for longest, heaviest, and both GHOST weightings, through the
/// `check_partition_merge` checker (which also replays the shard fold in
/// reverse order to catch merge-order sensitivity).
#[test]
fn sharded_batch_scoring_matches_serial_fold() {
    use btadt_core::criteria::score_partition::check_partition_merge;
    use btadt_core::selection::{batch_score, SelectionAux, TipUpdate};

    for seed in 0..20u64 {
        // Mint a fork-heavy tree; mint order is parent-closed, so any
        // consecutive slice of it is a valid drained batch.
        let n_blocks = 40 + (splitmix64_at(seed, 7) % 50) as usize;
        let mut store = BlockStore::new();
        let mut minted = vec![BlockId::GENESIS];
        for step in 0..n_blocks as u64 {
            let parent = pick_parent(seed ^ 0x7EA2, step, &minted);
            let work = 1 + splitmix64_at(seed ^ 0x3054, step) % 4;
            minted.push(store.mint(
                parent,
                ProcessId((step % 4) as u32),
                (step % 4) as u32,
                work,
                step,
                Payload::Empty,
            ));
        }

        for (name, rule) in rules() {
            // Batched pipeline state vs the serial commit-log fold. The
            // serial side keeps its own membership and inserts one block
            // at a time, exactly as the pre-pipeline drain did — so its
            // incremental state is warmed against the tree-so-far, never
            // against a tree that already holds the rest of the batch.
            let mut tree = TreeMembership::genesis_only();
            let mut aux = SelectionAux::new();
            let mut tip = BlockId::GENESIS;
            let mut serial_tree = TreeMembership::genesis_only();
            let mut serial_aux = SelectionAux::new();
            let mut serial_tip = BlockId::GENESIS;
            let mut commit_log: Vec<BlockId> = Vec::new();
            let mut serial_log: Vec<BlockId> = Vec::new();

            let mut next = 1usize;
            let mut batch_no = 0u64;
            while next <= n_blocks {
                // Drained batches of 1..=6 commits, like a contended drain.
                let want = 1 + (splitmix64_at(seed ^ 0xBA7C, batch_no) % 6) as usize;
                let batch: Vec<BlockId> = minted[next..(next + want).min(n_blocks + 1)].to_vec();
                next += batch.len();
                batch_no += 1;

                for &id in &batch {
                    tree.insert(&store, id);
                }
                let violations =
                    check_partition_merge(rule.as_ref(), &store, &tree, &aux, &batch, tip);
                assert!(
                    violations.is_empty(),
                    "seed {seed} batch {batch_no} rule {name}: {violations:?}"
                );
                tip = batch_score(rule.as_ref(), &store, &tree, &mut aux, &batch, tip);
                commit_log.extend_from_slice(&batch);

                // Serial fold over the identical commits, one at a time.
                for &id in &batch {
                    serial_tree.insert(&store, id);
                    match rule.on_insert(&store, &serial_tree, &mut serial_aux, id, serial_tip) {
                        TipUpdate::Unchanged => {}
                        TipUpdate::Extended(t) | TipUpdate::Switched(t) => serial_tip = t,
                    }
                    serial_log.push(id);
                }
                assert_eq!(
                    tip, serial_tip,
                    "seed {seed} batch {batch_no} rule {name}: batched tip diverged"
                );
            }
            assert_eq!(commit_log, serial_log, "seed {seed} rule {name}");
            assert_eq!(
                tip,
                rule.select_tip(&store, &tree),
                "seed {seed} rule {name}: final tip vs oracle"
            );
            assert_eq!(
                Blockchain::from_tip(&store, tip),
                Blockchain::from_tip(&store, serial_tip),
                "seed {seed} rule {name}: chains diverged"
            );
        }
    }
}

/// Repeated reads of an unchanged tip must share one snapshot allocation —
/// the zero-rewalk guarantee (`path_from_genesis` is off the read path).
#[test]
fn unchanged_tip_reads_share_the_snapshot() {
    use btadt_core::blocktree::{BlockTree, CandidateBlock};
    use btadt_core::validity::AcceptAll;

    let mut bt = BlockTree::new(LongestChain, AcceptAll);
    for i in 0..50 {
        bt.append(CandidateBlock::simple(ProcessId(0), i));
    }
    let a = bt.read();
    let b = bt.read();
    assert_eq!(a, b);
    assert_eq!(
        a.ids().as_ptr(),
        b.ids().as_ptr(),
        "reads of an unchanged tip must be Arc clones, not fresh walks"
    );
    bt.append(CandidateBlock::simple(ProcessId(0), 99));
    let c = bt.read();
    // Frontier appends extend the shared buffer in place: the held
    // snapshot keeps its shorter view, no copy-on-write happens.
    assert_eq!(c.len(), a.len() + 1);
    assert_eq!(a, b, "held snapshot is unmoved by the append");
    assert!(a.is_prefix_of(&c));
}
