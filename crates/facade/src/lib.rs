//! # blockchain-adt
//!
//! A unified, executable framework for blockchain consistency, reproducing
//! *Blockchain Abstract Data Type* (Anceaume, Del Pozzo, Ludinard,
//! Potop-Butucaru, Tucci-Piergiovanni — PPoPP 2019 poster /
//! arXiv:1802.09877) as a production-grade Rust workspace.
//!
//! This facade re-exports the five member crates:
//!
//! * [`core`] (`btadt-core`) — the BlockTree ADT, concurrent histories,
//!   the BT Strong/Eventual consistency criteria, the refinement
//!   hierarchy;
//! * [`oracle`] (`btadt-oracle`) — the frugal/prodigal token oracles and
//!   the refined append `R(BT-ADT, Θ)`;
//! * [`registers`] (`btadt-registers`) — shared-memory substrate: CAS,
//!   consumeToken cells, wait-free atomic snapshot, consensus from the
//!   oracle (the §4.1 consensus-number results, on real threads);
//! * [`sim`] (`btadt-sim`) — the deterministic message-passing simulator,
//!   Update Agreement and LRC checkers, impossibility drivers (§4.2–4.4);
//! * [`protocols`] (`btadt-protocols`) — the Table-1 system models
//!   (Bitcoin, Ethereum, ByzCoin, Algorand, PeerCensus, Red Belly,
//!   Hyperledger Fabric) and the empirical classifier.
//!
//! ## Quick start
//!
//! ```
//! use blockchain_adt::prelude::*;
//!
//! // A BlockTree with the longest-chain rule, fed through a frugal
//! // (k = 1) token oracle: the strongest, fork-free configuration.
//! let oracle = ThetaOracle::frugal(1, Merits::uniform(2), 2.0, 42);
//! let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
//! assert!(tree.append(ProcessId(0), Payload::Empty).succeeded());
//! let chain = tree.read(ProcessId(1));
//! assert_eq!(chain.len(), 2); // {b0}⌢f(bt)
//! ```

pub use btadt_core as core;
pub use btadt_oracle as oracle;
pub use btadt_protocols as protocols;
pub use btadt_registers as registers;
pub use btadt_sim as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use btadt_core::prelude::*;
    pub use btadt_oracle::{
        purge_unsuccessful, run_workload, AppendOutcome, KBound, Merits, RefinedBlockTree,
        SharedOracle, Tape, ThetaOracle, TokenGrant, WorkloadConfig,
    };
    pub use btadt_protocols::{table1, Classification, RunSchedule, SystemRun, TxStream};
    pub use btadt_registers::{
        run_trial, AtomicSnapshot, CasConsensus, CasFromCt, CasRegister, Consensus,
        ConsensusReport, ConsumeTokenCell, OracleConsensus, ProdigalCtCell, EMPTY,
    };
    pub use btadt_sim::{
        check_lrc, check_update_agreement, gossip_applied, lemma_4_4, lemma_4_5, theorem_4_8,
        update_agreement_positive, Ctx, DropPolicy, Msg, NetworkModel, Partition, Protocol,
        Replica, RunOutcome, SimpleMiner, Synchrony, Trace, TraceEvent, World,
    };
}
