//! ByzCoin (§5.3): PoW keyblocks + PBFT-style collective commit, mapped to
//! **R(BT-ADT_SC, Θ_F,k=1)**.
//!
//! The paper's mapping: `getToken` is the keyblock proof-of-work (several
//! concurrent winners possible); `consumeToken` "guarantees that during
//! the synchronous periods … a single key block will be appended … by
//! relying on a deterministic function which selects the key block whose
//! digest has the smallest least significant bits among the concurrent
//! key blocks".
//!
//! The model: miners run the tape lottery; a winner proposes a *candidate*
//! (broadcast as a custom message, not yet a tree block). At the end of
//! each commit round (length = the synchronous bound), every process
//! deterministically picks the candidate with the smallest digest for the
//! round's parent; the pick is committed through the frugal k = 1 oracle —
//! exactly one commit per parent can succeed, so the tree is forkless.
//! Committee micro-blocks (transaction batches) ride inside the committed
//! keyblocks as payloads.

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::Payload;
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// Candidate keyblock announcement: `(parent, digest, proposer)`.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub parent: BlockId,
    pub digest: u64,
    pub proposer: ProcessId,
}

/// One ByzCoin process.
#[derive(Clone, Debug)]
pub struct ByzCoinNode {
    txs: TxStream,
    producing: bool,
    /// Round length in ticks (≥ the synchronous bound δ so all candidates
    /// are visible before the pick).
    round_len: u64,
    /// Candidates observed for the current round, keyed by parent.
    candidates: Vec<Candidate>,
    /// PoW wins of this node awaiting the round boundary.
    my_wins: Vec<Candidate>,
    ticks: u64,
}

impl ByzCoinNode {
    pub fn new(seed: u64, round_len: u64) -> Self {
        ByzCoinNode {
            txs: TxStream::new(seed),
            producing: true,
            round_len,
            candidates: Vec::new(),
            my_wins: Vec::new(),
            ticks: 0,
        }
    }
}

impl Protocol for ByzCoinNode {
    type Custom = Candidate;

    fn on_tick(&mut self, ctx: &mut Ctx<'_, Candidate>) {
        self.ticks += 1;

        // PoW lottery on the current local tip: a win announces a
        // candidate (costs a tape cell; the token itself is only taken at
        // commit time, so we burn the cell through the oracle's tape by a
        // getToken that we deliberately do not consume — modeled here as a
        // plain probability draw via the candidate digest race).
        if self.producing {
            let parent = ctx.tip();
            if let Some(grant) = ctx.oracle.get_token(ctx.me.index(), parent) {
                // A keyblock PoW win: announce the candidate. The grant is
                // deliberately dropped — ByzCoin's commit is the PBFT
                // round, not the PoW itself.
                let _ = grant;
                let digest = ctx.random();
                let cand = Candidate {
                    parent,
                    digest,
                    proposer: ctx.me,
                };
                self.my_wins.push(cand.clone());
                self.candidates.push(cand.clone());
                ctx.broadcast_custom(cand);
            }
        }

        // Round boundary: deterministic smallest-digest pick, committed
        // through the k = 1 oracle by the winning proposer itself.
        if self.ticks.is_multiple_of(self.round_len) {
            let parent = ctx.tip();
            let pick = self
                .candidates
                .iter()
                .filter(|c| c.parent == parent)
                .min_by_key(|c| (c.digest, c.proposer));
            if let Some(pick) = pick {
                if pick.proposer == ctx.me {
                    // The elected proposer performs the commit: the k = 1
                    // consume is the PBFT decision. The election already
                    // happened, so the commit loops the token lottery (a
                    // bounded τ_a* retry) — the oracle still mediates so
                    // k-fork coherence is enforced by Θ_F,k=1 even if two
                    // processes ever disagree on the pick.
                    let payload = Payload::Transactions(self.txs.take(4));
                    for _ in 0..64 {
                        if let Some(block) = ctx.mine_at(parent, payload.clone(), 1) {
                            ctx.broadcast_block(parent, block);
                            break;
                        }
                    }
                }
            }
            self.candidates.clear();
            self.my_wins.clear();
        }
    }

    fn on_custom(&mut self, _ctx: &mut Ctx<'_, Candidate>, _from: ProcessId, msg: Candidate) {
        self.candidates.push(msg);
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, Candidate>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for ByzCoinNode {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a ByzCoin run.
#[derive(Clone, Debug)]
pub struct ByzCoinConfig {
    pub n: usize,
    /// PoW win rate across the network per tick.
    pub rate: f64,
    pub delta: u64,
    /// Commit round length (must be ≥ delta for the synchronous pick).
    pub round_len: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for ByzCoinConfig {
    fn default() -> Self {
        ByzCoinConfig {
            n: 8,
            rate: 1.2,
            delta: 3,
            round_len: 5,
            schedule: RunSchedule::default(),
            seed: 0xB42C_0117,
        }
    }
}

/// Runs the ByzCoin model.
pub fn run(cfg: &ByzCoinConfig) -> SystemRun {
    assert!(cfg.round_len >= cfg.delta, "round must cover δ");
    let merits = Merits::uniform(cfg.n);
    // Frugal k = 1: the PBFT commit admits one keyblock per parent, ever.
    let oracle = ThetaOracle::frugal(1, merits, cfg.rate, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let nodes = (0..cfg.n)
        .map(|i| ByzCoinNode::new(cfg.seed ^ ((i as u64) << 8), cfg.round_len))
        .collect();
    let world: World<ByzCoinNode> =
        World::new(nodes, oracle, net, Box::new(LongestChain), cfg.seed);
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn byzcoin_is_strongly_consistent() {
        for seed in [1u64, 2, 3] {
            let run = run(&ByzCoinConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 3, "seed {seed}: progress");
            assert_eq!(run.max_fork_degree, 1, "seed {seed}: k=1 ⇒ forkless");
            assert_eq!(
                run.consistency_class(),
                ConsistencyClass::Strong,
                "seed {seed}"
            );
            assert!(run.converged());
        }
    }

    #[test]
    fn commit_rate_below_pow_rate() {
        // Many PoW wins race per round but at most one commit per round
        // lands: chain length ≤ rounds.
        let cfg = ByzCoinConfig {
            seed: 7,
            ..Default::default()
        };
        let run = run(&cfg);
        let total_ticks = cfg.schedule.main_ticks + cfg.schedule.growth_ticks + 20;
        let rounds = total_ticks / cfg.round_len;
        assert!(
            (run.blocks_minted as u64) <= rounds + 1,
            "{} blocks in {rounds} rounds",
            run.blocks_minted
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&ByzCoinConfig::default());
        let b = run(&ByzCoinConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
    }
}
