//! Algorand (§5.4): proof-of-stake sortition + BA* agreement, mapped to
//! **R(BT-ADT_SC, Θ_F,k=1) — SC with high probability**.
//!
//! The paper's mapping: "the cryptographic sortition implements the
//! `getToken` operation by selecting the block proposer … providing them a
//! random priority, so that with high probability the highest priority
//! committee member will be in charge of proposing the new block … The
//! variant of Byzantine agreement BA* implements the `consumeToken`
//! operation … if there is no agreement, BA* may create forks with
//! probability less than 10⁻⁷."
//!
//! The model runs in rounds (the paper's synchronous setting):
//!
//! * **sortition** — a deterministic stake-weighted priority draw per
//!   round; every process computes everyone's priority locally (a VRF in
//!   the real system), so the highest-priority proposer is common
//!   knowledge;
//! * **BA\* commit** — the proposer commits through the frugal oracle
//!   (k = 1 normally); with probability `fork_probability` per round the
//!   round is *adversarial* and the two top-priority proposers both
//!   commit (modeled by a k = 2 oracle in that world), reproducing the
//!   "with probability < 10⁻⁷" caveat as a tunable knob.

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::Payload;
use btadt_core::ids::{mix2, splitmix64_at, BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// Stake-weighted sortition: the round's proposer priority list, computed
/// identically at every process (deterministic VRF stand-in).
///
/// Priority of process `i` in `round` = `hash(seed, round, i)` scaled by
/// stake; the winner is the argmax. With integer weights `w_i`, process
/// `i` gets `w_i` lottery tickets — the draw is fair in stake.
pub fn sortition_winner(seed: u64, round: u64, stakes: &[u64]) -> ProcessId {
    let mut best: Option<(u64, usize)> = None;
    for (i, &w) in stakes.iter().enumerate() {
        // Best ticket among the process's w tickets.
        let mut ticket_best = 0u64;
        for t in 0..w {
            let ticket = splitmix64_at(mix2(seed, round), (i as u64) << 32 | t);
            ticket_best = ticket_best.max(ticket);
        }
        if w > 0 {
            match best {
                Some((b, _)) if b >= ticket_best => {}
                _ => best = Some((ticket_best, i)),
            }
        }
    }
    ProcessId(best.expect("some stake must be positive").1 as u32)
}

/// Runner-up under the same draw (for adversarial fork rounds).
pub fn sortition_runner_up(seed: u64, round: u64, stakes: &[u64]) -> ProcessId {
    let winner = sortition_winner(seed, round, stakes);
    let mut stakes2 = stakes.to_vec();
    stakes2[winner.index()] = 0;
    sortition_winner(seed, round, &stakes2)
}

/// One Algorand process.
#[derive(Clone, Debug)]
pub struct AlgorandNode {
    txs: TxStream,
    producing: bool,
    round_len: u64,
    stakes: Vec<u64>,
    sortition_seed: u64,
    /// Per-round fork probability (0 = ideal BA*; the paper's bound is
    /// < 10⁻⁷).
    fork_probability: f64,
    ticks: u64,
}

impl AlgorandNode {
    pub fn new(
        seed: u64,
        round_len: u64,
        stakes: Vec<u64>,
        sortition_seed: u64,
        fork_probability: f64,
    ) -> Self {
        AlgorandNode {
            txs: TxStream::new(seed),
            producing: true,
            round_len,
            stakes,
            sortition_seed,
            fork_probability,
            ticks: 0,
        }
    }
}

impl Protocol for AlgorandNode {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.ticks += 1;
        if !self.producing || !self.ticks.is_multiple_of(self.round_len) {
            return;
        }
        let round = self.ticks / self.round_len;
        let winner = sortition_winner(self.sortition_seed, round, &self.stakes);

        // Adversarial-round draw (common coin: same at every process).
        let coin = splitmix64_at(mix2(self.sortition_seed, 0xF02C), round);
        let adversarial = ((coin >> 11) as f64 / (1u64 << 53) as f64) < self.fork_probability;

        let proposers: Vec<ProcessId> = if adversarial {
            vec![
                winner,
                sortition_runner_up(self.sortition_seed, round, &self.stakes),
            ]
        } else {
            vec![winner]
        };
        if proposers.contains(&ctx.me) {
            let parent = ctx.tip();
            let payload = Payload::Transactions(self.txs.take(3));
            for _ in 0..64 {
                if let Some(block) = ctx.mine_at(parent, payload.clone(), 1) {
                    ctx.broadcast_block(parent, block);
                    break;
                }
            }
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for AlgorandNode {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of an Algorand run.
#[derive(Clone, Debug)]
pub struct AlgorandConfig {
    pub n: usize,
    /// Stake (coins) per process.
    pub stakes: Option<Vec<u64>>,
    pub delta: u64,
    pub round_len: u64,
    /// Per-round BA* failure probability (paper: < 10⁻⁷; default 0).
    pub fork_probability: f64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for AlgorandConfig {
    fn default() -> Self {
        AlgorandConfig {
            n: 8,
            stakes: None,
            delta: 3,
            round_len: 5,
            fork_probability: 0.0,
            schedule: RunSchedule::default(),
            seed: 0xA160_04BD,
        }
    }
}

/// Runs the Algorand model.
pub fn run(cfg: &AlgorandConfig) -> SystemRun {
    let stakes = cfg.stakes.clone().unwrap_or_else(|| vec![10; cfg.n]);
    assert_eq!(stakes.len(), cfg.n);
    let merits = Merits::from_weights(stakes.iter().map(|&s| s as f64).collect());
    // Ideal BA*: k = 1. Adversarial mode needs room for the double commit.
    let k = if cfg.fork_probability > 0.0 { 2 } else { 1 };
    let oracle = ThetaOracle::frugal(k, merits, cfg.n as f64 * 0.9, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let nodes = (0..cfg.n)
        .map(|i| {
            AlgorandNode::new(
                cfg.seed ^ ((i as u64) << 8),
                cfg.round_len,
                stakes.clone(),
                mix2(cfg.seed, 0x50B7),
                cfg.fork_probability,
            )
        })
        .collect();
    let world: World<AlgorandNode> =
        World::new(nodes, oracle, net, Box::new(LongestChain), cfg.seed);
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn sortition_is_deterministic_and_stake_fair() {
        let stakes = vec![1u64, 1, 8];
        let mut wins = [0u32; 3];
        for round in 0..600 {
            let w = sortition_winner(99, round, &stakes);
            assert_eq!(w, sortition_winner(99, round, &stakes));
            wins[w.index()] += 1;
        }
        assert!(
            wins[2] > wins[0] + wins[1],
            "the 80%-stake holder must win most rounds: {wins:?}"
        );
    }

    #[test]
    fn runner_up_differs_from_winner() {
        let stakes = vec![5u64, 5, 5];
        for round in 0..50 {
            assert_ne!(
                sortition_winner(7, round, &stakes),
                sortition_runner_up(7, round, &stakes)
            );
        }
    }

    #[test]
    fn ideal_algorand_is_strongly_consistent() {
        for seed in [1u64, 2, 3] {
            let run = run(&AlgorandConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 3, "seed {seed}");
            assert_eq!(run.max_fork_degree, 1, "seed {seed}: ideal BA*");
            assert_eq!(run.consistency_class(), ConsistencyClass::Strong);
        }
    }

    #[test]
    fn adversarial_rounds_can_fork() {
        // Crank the failure probability to make the caveat visible.
        let run = run(&AlgorandConfig {
            fork_probability: 0.5,
            seed: 11,
            ..Default::default()
        });
        assert!(
            run.max_fork_degree >= 2,
            "with per-round failure 0.5 some round must fork"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&AlgorandConfig::default());
        let b = run(&AlgorandConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
    }
}
