//! FruitChain (Pass & Shi [27], cited in §5.1): "a protocol similar to
//! Bitcoin except for the rewarding mechanism" — the same
//! **R(BT-ADT_EC, Θ_P)** class, with rewards attached to high-rate,
//! low-difficulty *fruits* instead of blocks, which slashes reward
//! variance and makes small miners' income track their merit.
//!
//! The model: every miner runs **two** lotteries per tick —
//!
//! * the *block* lottery (low rate): identical to the Bitcoin model,
//!   longest-chain, flooding;
//! * the *fruit* lottery (high rate, a second tape seeded independently):
//!   a win broadcasts a fruit; fruits ride in the next block any miner
//!   commits and pay their *producer* one reward unit.
//!
//! The fairness experiment (A5): compare the reward-share deviation from
//! merit shares between per-block rewards (Bitcoin) and per-fruit rewards
//! (FruitChain) on matched runs.

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle};
use btadt_core::block::Payload;
use btadt_core::ids::{mix2, BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_oracle::fairness::{reward_fairness, FairnessReport};
use btadt_oracle::{Merits, Tape, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// Fruit-lottery attempts per tick per miner.
pub const FRUIT_ATTEMPTS: u64 = 8;

/// A fruit: `(producer, serial)` — a micro-PoW win carrying a reward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fruit {
    pub producer: ProcessId,
    pub serial: u64,
}

/// One FruitChain miner.
#[derive(Clone, Debug)]
pub struct FruitMiner {
    producing: bool,
    fruit_tape: Tape,
    fruit_serial: u64,
    /// Fruits observed but not yet included in a block this miner mined.
    pending_fruits: Vec<Fruit>,
    /// Fruits credited on the local chain view: rewards[i] = fruit count.
    rewards: Vec<u64>,
}

impl FruitMiner {
    pub fn new(seed: u64, fruit_p: f64, n: usize) -> Self {
        FruitMiner {
            producing: true,
            fruit_tape: Tape::new(mix2(seed, 0xF2017), fruit_p),
            fruit_serial: 0,
            pending_fruits: Vec::new(),
            rewards: vec![0; n],
        }
    }

    /// Per-producer fruit rewards credited at this miner.
    pub fn rewards(&self) -> &[u64] {
        &self.rewards
    }
}

impl Protocol for FruitMiner {
    type Custom = Fruit;

    fn on_tick(&mut self, ctx: &mut Ctx<'_, Fruit>) {
        if !self.producing {
            return;
        }
        // Fruit lottery (high rate, low value): several independent
        // attempts per tick so per-attempt probabilities stay well below 1
        // even for dominant miners (a clamped Bernoulli would destroy the
        // merit-proportionality the fairness claim rests on).
        for _ in 0..FRUIT_ATTEMPTS {
            if self.fruit_tape.pop().is_token() {
                self.fruit_serial += 1;
                let fruit = Fruit {
                    producer: ctx.me,
                    serial: (u64::from(ctx.me.0) << 32) | self.fruit_serial,
                };
                // Broadcast only; the producer's own copy arrives through
                // self-delivery, so every fruit enters each pending set
                // exactly once (a local push would double-credit it).
                ctx.broadcast_custom(fruit);
            }
        }
        // Block lottery (the Bitcoin path). A mined block "includes" the
        // pending fruits: their producers get credited.
        if let Some(block) = ctx.mine(Payload::Opaque(self.fruit_serial), 1) {
            for f in self.pending_fruits.drain(..) {
                self.rewards[f.producer.index()] += 1;
            }
            let parent = ctx.store.get(block).parent.expect("mined");
            ctx.broadcast_block(parent, block);
        }
    }

    fn on_custom(&mut self, _ctx: &mut Ctx<'_, Fruit>, _from: ProcessId, fruit: Fruit) {
        if !self.pending_fruits.contains(&fruit) {
            self.pending_fruits.push(fruit);
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, Fruit>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        let applied = gossip_applied(ctx, parent, block);
        // A committed remote block also settles the pending fruits
        // (every replica credits identically under full dissemination).
        if !applied.is_empty() {
            for f in self.pending_fruits.drain(..) {
                self.rewards[f.producer.index()] += 1;
            }
        }
    }
}

impl Throttle for FruitMiner {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a FruitChain run.
#[derive(Clone, Debug)]
pub struct FruitChainConfig {
    pub n: usize,
    pub hash_power: Option<Vec<f64>>,
    /// Block-lottery rate (network-wide wins per tick).
    pub block_rate: f64,
    /// Per-miner fruit probability per tick (scaled by merit below).
    pub fruit_rate: f64,
    pub delta: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for FruitChainConfig {
    fn default() -> Self {
        FruitChainConfig {
            n: 8,
            hash_power: None,
            block_rate: 0.7,
            fruit_rate: 4.0,
            delta: 3,
            schedule: RunSchedule::default(),
            seed: 0xF271_C4A1,
        }
    }
}

/// Outcome: the system run plus the per-producer fruit rewards (taken from
/// process 0's credit view; under full dissemination all views agree).
pub struct FruitChainRun {
    pub run: SystemRun,
    pub fruit_rewards: Vec<u64>,
    pub block_rewards: Vec<u64>,
}

impl FruitChainRun {
    /// Reward fairness under per-fruit rewards.
    pub fn fruit_fairness(&self, merits: &Merits) -> FairnessReport {
        reward_fairness(merits, &self.fruit_rewards)
    }

    /// Reward fairness under per-block rewards (the Bitcoin baseline on
    /// the same run).
    pub fn block_fairness(&self, merits: &Merits) -> FairnessReport {
        reward_fairness(merits, &self.block_rewards)
    }
}

/// Runs the FruitChain model.
pub fn run(cfg: &FruitChainConfig) -> FruitChainRun {
    let merits = match &cfg.hash_power {
        Some(w) => Merits::from_weights(w.clone()),
        None => Merits::uniform(cfg.n),
    };
    let oracle = ThetaOracle::prodigal(merits.clone(), cfg.block_rate, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let miners: Vec<FruitMiner> = (0..cfg.n)
        .map(|i| {
            let p = merits.token_probability(i, cfg.fruit_rate / FRUIT_ATTEMPTS as f64);
            FruitMiner::new(cfg.seed ^ ((i as u64) << 8), p, cfg.n)
        })
        .collect();
    let mut world: World<FruitMiner> =
        World::new(miners, oracle, net, Box::new(LongestChain), cfg.seed);
    // standard_run consumes the world; capture rewards via the store
    // afterwards (block rewards) and by re-walking the trace for fruits is
    // impossible — so run the schedule inline instead.
    world.read_every = Some(cfg.schedule.read_every);
    world.run_ticks(cfg.schedule.main_ticks + cfg.schedule.settle_ticks);
    world.run_ticks(cfg.schedule.post_cut_grace + cfg.schedule.growth_ticks);
    for p in 0..world.n() {
        world.protocol_mut(ProcessId(p as u32)).stop_producing();
    }
    world.run_ticks(cfg.schedule.drain_ticks);
    world.read_all();

    let fruit_rewards = world.protocol(ProcessId(0)).rewards().to_vec();
    let mut block_rewards = vec![0u64; cfg.n];
    for id in world.store.ids().skip(1) {
        block_rewards[world.store.get(id).producer.index()] += 1;
    }

    // Package a SystemRun-compatible view through the standard driver by
    // re-running the same seeds — cheap and keeps one code path for the
    // consistency classification.
    let run = standard_run(
        {
            let oracle = ThetaOracle::prodigal(merits, cfg.block_rate, cfg.seed);
            let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
            let miners: Vec<FruitMiner> = (0..cfg.n)
                .map(|i| {
                    let m = match &cfg.hash_power {
                        Some(w) => Merits::from_weights(w.clone()),
                        None => Merits::uniform(cfg.n),
                    };
                    let p = m.token_probability(i, cfg.fruit_rate / FRUIT_ATTEMPTS as f64);
                    FruitMiner::new(cfg.seed ^ ((i as u64) << 8), p, cfg.n)
                })
                .collect();
            World::new(miners, oracle, net, Box::new(LongestChain), cfg.seed)
        },
        &cfg.schedule,
    );

    FruitChainRun {
        run,
        fruit_rewards,
        block_rewards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn fruitchain_is_eventually_consistent_like_bitcoin() {
        let out = run(&FruitChainConfig::default());
        assert!(out.run.blocks_minted > 5);
        assert!(out.run.consistency_class() >= ConsistencyClass::Eventual);
        assert!(out.run.converged());
    }

    #[test]
    fn fruit_rewards_track_merit_better_than_block_rewards() {
        // Skewed power: 4:1:1:1. Fruit rewards (high-rate lottery) must
        // deviate from merit no more than block rewards (low-rate lottery)
        // — the FruitChain fairness claim.
        let mut devs = (0.0f64, 0.0f64);
        let mut seeds_checked = 0;
        for seed in [1u64, 2, 3, 4] {
            let cfg = FruitChainConfig {
                n: 4,
                hash_power: Some(vec![4.0, 1.0, 1.0, 1.0]),
                seed,
                ..Default::default()
            };
            let merits = Merits::from_weights(vec![4.0, 1.0, 1.0, 1.0]);
            let out = run(&cfg);
            let ff = out.fruit_fairness(&merits);
            let bf = out.block_fairness(&merits);
            if ff.total > 20 && bf.total > 10 {
                devs.0 += ff.max_deviation;
                devs.1 += bf.max_deviation;
                seeds_checked += 1;
            }
        }
        assert!(seeds_checked >= 3, "enough material in the runs");
        assert!(
            devs.0 <= devs.1 + 0.02,
            "mean fruit deviation {:.3} must not exceed block deviation {:.3}",
            devs.0 / seeds_checked as f64,
            devs.1 / seeds_checked as f64
        );
    }

    #[test]
    fn fruits_flow_and_get_credited() {
        let out = run(&FruitChainConfig::default());
        let total_fruit_rewards: u64 = out.fruit_rewards.iter().sum();
        assert!(total_fruit_rewards > 0, "fruits must be credited");
        // Uniform power: every miner earns some fruit over a long run.
        assert!(
            out.fruit_rewards.iter().filter(|&&r| r > 0).count() >= 6,
            "most miners earn fruit: {:?}",
            out.fruit_rewards
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&FruitChainConfig::default());
        let b = run(&FruitChainConfig::default());
        assert_eq!(a.fruit_rewards, b.fruit_rewards);
        assert_eq!(a.block_rewards, b.block_rewards);
    }
}
