//! Bitcoin (§5.1): the pioneer permissionless blockchain, mapped to
//! **R(BT-ADT_EC, Θ_P)**.
//!
//! The model, following the paper's mapping:
//!
//! * merit `α_p` = normalized hashing power; `getToken` is the
//!   proof-of-work lottery (one tape cell per tick of hashing);
//! * `consumeToken` "returns true for all valid blocks" — the **prodigal**
//!   oracle: no bound on consumed tokens, so concurrent miners fork;
//! * valid blocks are **flooded** (gossip echo — the LRC implementation
//!   over reliable FIFO channels);
//! * `f` selects the chain that required the most work (longest /
//!   heaviest chain with deterministic tie-break);
//! * blocks carry transaction batches drawn from a deterministic mempool.
//!
//! Under a synchronous environment the run satisfies BT *Eventual*
//! consistency but (whenever a fork surfaces in reads) not Strong
//! consistency — Garay et al. [17] for the real system, experiment T1
//! here.
//!
//! The hot path — every miner re-reads its local tip each tick via
//! `ctx.mine` — rides the replicas' incremental selection caches
//! (`btadt_core::tipcache`): per-tick selection is O(1) rather than a
//! rescan of the ever-growing tree, so long runs stay tick-bound, not
//! tree-bound.

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::Payload;
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::{HeaviestWork, LongestChain};
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// A Nakamoto-style miner: tape-lottery mining at the local tip, flooding
/// dissemination, longest/heaviest-chain selection (selection lives in the
/// world). Reused by the Ethereum model.
#[derive(Clone, Debug)]
pub struct NakamotoMiner {
    txs: TxStream,
    txs_per_block: usize,
    producing: bool,
}

impl NakamotoMiner {
    pub fn new(seed: u64, txs_per_block: usize) -> Self {
        NakamotoMiner {
            txs: TxStream::new(seed),
            txs_per_block,
            producing: true,
        }
    }
}

impl Protocol for NakamotoMiner {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        if !self.producing {
            return;
        }
        let payload = Payload::Transactions(self.txs.take(self.txs_per_block));
        if let Some(block) = ctx.mine(payload, 1) {
            let parent = ctx.store.get(block).parent.expect("mined block");
            ctx.broadcast_block(parent, block);
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        // Valid blocks are flooded in the system (gossip echo ⇒ LRC).
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for NakamotoMiner {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a Bitcoin run.
#[derive(Clone, Debug)]
pub struct BitcoinConfig {
    /// Number of miners.
    pub n: usize,
    /// Hashing-power weights (uniform if `None`).
    pub hash_power: Option<Vec<f64>>,
    /// Expected token wins per tick across the whole network (the inverse
    /// "difficulty": higher ⇒ more simultaneous wins ⇒ more forks).
    pub rate: f64,
    /// Synchronous delivery bound δ (ticks).
    pub delta: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for BitcoinConfig {
    fn default() -> Self {
        BitcoinConfig {
            n: 8,
            hash_power: None,
            rate: 0.7,
            delta: 3,
            schedule: RunSchedule::default(),
            seed: 0xB17C_0117,
        }
    }
}

/// Runs the Bitcoin model and returns the recorded system run.
pub fn run(cfg: &BitcoinConfig) -> SystemRun {
    let merits = match &cfg.hash_power {
        Some(w) => Merits::from_weights(w.clone()),
        None => Merits::uniform(cfg.n),
    };
    let oracle = ThetaOracle::prodigal(merits, cfg.rate, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let miners = (0..cfg.n)
        .map(|i| NakamotoMiner::new(cfg.seed ^ (i as u64) << 8, 3))
        .collect();
    let world: World<NakamotoMiner> =
        World::new(miners, oracle, net, Box::new(LongestChain), cfg.seed);
    standard_run(world, &cfg.schedule)
}

/// Bitcoin with the heaviest-work rule (difficulty-weighted variant, used
/// by ablation A2 alongside GHOST).
pub fn run_heaviest(cfg: &BitcoinConfig) -> SystemRun {
    let merits = match &cfg.hash_power {
        Some(w) => Merits::from_weights(w.clone()),
        None => Merits::uniform(cfg.n),
    };
    let oracle = ThetaOracle::prodigal(merits, cfg.rate, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let miners = (0..cfg.n)
        .map(|i| NakamotoMiner::new(cfg.seed ^ (i as u64) << 8, 3))
        .collect();
    let world: World<NakamotoMiner> =
        World::new(miners, oracle, net, Box::new(HeaviestWork), cfg.seed);
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn bitcoin_is_eventually_consistent_with_forks() {
        let mut any_forked = false;
        for seed in [1u64, 2, 3] {
            let cfg = BitcoinConfig {
                seed,
                ..Default::default()
            };
            let run = run(&cfg);
            assert!(run.blocks_minted > 5, "seed {seed}: chain must grow");
            assert!(run.converged(), "seed {seed}: synchronous net converges");
            let class = run.consistency_class();
            assert!(
                class >= ConsistencyClass::Eventual,
                "seed {seed}: Bitcoin must be at least EC, got {class}"
            );
            any_forked |= run.max_fork_degree > 1;
        }
        assert!(any_forked, "prodigal PoW at rate 0.7 must fork somewhere");
    }

    #[test]
    fn forks_surface_as_strong_prefix_violations() {
        // At least one seed must show EC-but-not-SC — Bitcoin's class.
        let eventual_only = [1u64, 2, 3, 4, 5].iter().any(|&seed| {
            let run = run(&BitcoinConfig {
                seed,
                ..Default::default()
            });
            run.consistency_class() == ConsistencyClass::Eventual
        });
        assert!(eventual_only, "some run must be EC∖SC");
    }

    #[test]
    fn hash_power_skews_block_production() {
        // One miner with 8× the power of the other seven together.
        let mut weights = vec![1.0; 8];
        weights[0] = 56.0;
        let run = run(&BitcoinConfig {
            hash_power: Some(weights),
            seed: 9,
            ..Default::default()
        });
        let store = &run.store;
        let by_p0 = store
            .ids()
            .skip(1)
            .filter(|&b| store.get(b).producer == ProcessId(0))
            .count();
        let total = store.len() - 1;
        assert!(
            by_p0 * 2 > total,
            "dominant miner must produce the majority: {by_p0}/{total}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&BitcoinConfig::default());
        let b = run(&BitcoinConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
        assert_eq!(a.max_fork_degree, b.max_fork_degree);
        assert_eq!(a.trace.history.len(), b.trace.history.len());
    }
}
