//! PeerCensus (§5.5): PoW identity establishment + dynamic Byzantine
//! consensus, mapped to **R(BT-ADT_SC, Θ_F,k=1)**.
//!
//! The paper's mapping: "`getToken` is implemented by a proof-of-work
//! mechanism, and `consumeToken`, implemented by the Byzantine consensus,
//! commits a single key block among the concurrent ones … as long as no
//! more than 1/3 of the committee members are Byzantine (*secure state*)."
//!
//! Two artifacts live here:
//!
//! * the protocol run — PoW keyblock candidates, committee = the miners of
//!   the last `w` committed blocks, BFT commit through the k = 1 oracle;
//! * [`secure_state_probability`] — the §5.5 numeric claim (after [2]):
//!   the probability that a committee of `c` members sampled from a
//!   population where the adversary controls fraction `α_A` of the
//!   computational power keeps its Byzantine share below 1/3. The paper
//!   quotes "if α_A = 1/4 the probability PeerCensus reaches a secure
//!   state is only ≈ 1/3" (for the successive-quorum analysis); our
//!   Monte-Carlo regenerates the downward trend (experiment A4).

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::Payload;
use btadt_core::ids::{mix2, splitmix64_at, BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// One PeerCensus node.
#[derive(Clone, Debug)]
pub struct PeerCensusNode {
    txs: TxStream,
    producing: bool,
    round_len: u64,
    /// Committee window: miners of the last `w` blocks vote.
    window: usize,
    ticks: u64,
}

impl PeerCensusNode {
    pub fn new(seed: u64, round_len: u64, window: usize) -> Self {
        PeerCensusNode {
            txs: TxStream::new(seed),
            producing: true,
            round_len,
            window,
            ticks: 0,
        }
    }

    /// The current committee: producers of the last `w` blocks of the
    /// local chain (deterministic from the replica state).
    fn committee(&self, ctx: &Ctx<'_, ()>) -> Vec<ProcessId> {
        let chain = ctx.read_local();
        chain
            .ids()
            .iter()
            .rev()
            .take(self.window)
            .filter(|b| !b.is_genesis())
            .map(|&b| ctx.store.get(b).producer)
            .collect()
    }
}

impl Protocol for PeerCensusNode {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.ticks += 1;
        if !self.producing || !self.ticks.is_multiple_of(self.round_len) {
            return;
        }
        // The committee leader of the round (rotating over the window,
        // deterministic at every process; genesis round: process 0).
        let committee = self.committee(ctx);
        let round = self.ticks / self.round_len;
        let leader = if committee.is_empty() {
            ProcessId(0)
        } else {
            committee[(round as usize) % committee.len()]
        };
        if leader == ctx.me {
            let parent = ctx.tip();
            let payload = Payload::Transactions(self.txs.take(3));
            for _ in 0..64 {
                if let Some(block) = ctx.mine_at(parent, payload.clone(), 1) {
                    ctx.broadcast_block(parent, block);
                    break;
                }
            }
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for PeerCensusNode {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a PeerCensus run.
#[derive(Clone, Debug)]
pub struct PeerCensusConfig {
    pub n: usize,
    pub delta: u64,
    pub round_len: u64,
    /// Committee window `w`.
    pub window: usize,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for PeerCensusConfig {
    fn default() -> Self {
        PeerCensusConfig {
            n: 8,
            delta: 3,
            round_len: 5,
            window: 6,
            schedule: RunSchedule::default(),
            seed: 0x9EE2_CE45,
        }
    }
}

/// Runs the PeerCensus model.
pub fn run(cfg: &PeerCensusConfig) -> SystemRun {
    let merits = Merits::uniform(cfg.n);
    let oracle = ThetaOracle::frugal(1, merits, cfg.n as f64 * 0.9, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let nodes = (0..cfg.n)
        .map(|i| PeerCensusNode::new(cfg.seed ^ ((i as u64) << 8), cfg.round_len, cfg.window))
        .collect();
    let world: World<PeerCensusNode> =
        World::new(nodes, oracle, net, Box::new(LongestChain), cfg.seed);
    standard_run(world, &cfg.schedule)
}

/// Monte-Carlo estimate of the probability that `rounds` successive
/// committees of size `c`, sampled by computational power from a
/// population where the adversary holds fraction `alpha_a`, *all* keep
/// their Byzantine share strictly below 1/3 (the §5.5 "secure state",
/// after Anceaume et al. [2]).
pub fn secure_state_probability(
    alpha_a: f64,
    committee_size: usize,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!((0.0..1.0).contains(&alpha_a));
    assert!(committee_size > 0 && rounds > 0 && trials > 0);
    let mut secure = 0usize;
    for trial in 0..trials {
        let mut all_ok = true;
        'rounds: for round in 0..rounds {
            let mut byz = 0usize;
            for m in 0..committee_size {
                let r = splitmix64_at(mix2(seed, trial as u64), ((round as u64) << 16) | m as u64);
                let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                if u < alpha_a {
                    byz += 1;
                }
            }
            if 3 * byz >= committee_size {
                all_ok = false;
                break 'rounds;
            }
        }
        if all_ok {
            secure += 1;
        }
    }
    secure as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn peercensus_is_strongly_consistent() {
        for seed in [1u64, 2] {
            let run = run(&PeerCensusConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 3, "seed {seed}");
            assert_eq!(run.max_fork_degree, 1, "seed {seed}");
            assert_eq!(run.consistency_class(), ConsistencyClass::Strong);
        }
    }

    #[test]
    fn secure_state_probability_decreases_in_adversary_power() {
        let p10 = secure_state_probability(0.10, 30, 10, 400, 5);
        let p25 = secure_state_probability(0.25, 30, 10, 400, 5);
        let p33 = secure_state_probability(0.33, 30, 10, 400, 5);
        assert!(p10 > p25, "more adversary ⇒ less security: {p10} vs {p25}");
        assert!(p25 > p33, "{p25} vs {p33}");
        assert!(p10 > 0.9, "10% adversary is comfortably secure: {p10}");
        assert!(p33 < 0.3, "at the 1/3 boundary security collapses: {p33}");
    }

    #[test]
    fn quarter_adversary_is_fragile_over_successive_quorums() {
        // The §5.5 remark: with α_A = 1/4, successive-quorum security is
        // far from certain (the paper quotes ≈ 1/3 for its parameters).
        let p = secure_state_probability(0.25, 30, 10, 800, 7);
        assert!(
            (0.05..0.75).contains(&p),
            "α_A=0.25 must be materially insecure over 10 rounds, got {p}"
        );
    }

    #[test]
    fn secure_state_probability_is_deterministic() {
        let a = secure_state_probability(0.2, 20, 5, 100, 1);
        let b = secure_state_probability(0.2, 20, 5, 100, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_run() {
        let a = run(&PeerCensusConfig::default());
        let b = run(&PeerCensusConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
    }
}
