//! Shared infrastructure for the Table-1 protocol models: run schedules,
//! the standard experiment driver, and per-run statistics.
//!
//! Every model follows the same observational protocol so classifications
//! are comparable:
//!
//! 1. **main phase** — the protocol runs, periodic recorded reads;
//! 2. **settle** — in-flight messages land (convergence on synchronous
//!    nets) — the *convergence cut* is placed here;
//! 3. **growth phase** — the protocol keeps producing blocks past the cut
//!    (Ever-Growing-Tree needs `E(a*, r*)`-shaped traces);
//! 4. **throttle + drain** — block production stops, the last messages
//!    land (LRC/Update-Agreement are evaluated on settled traces);
//! 5. **final reads** — two rounds of recorded reads at every correct
//!    process (post-cut convergence witnesses).

use btadt_core::chain::Blockchain;
use btadt_core::criteria::{classify, ConsistencyClass, ConsistencyParams, LivenessMode};
use btadt_core::ids::{ProcessId, Time};
use btadt_core::score::LengthScore;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;
use btadt_sim::{Protocol, Trace, World};

/// A protocol that can be told to stop producing blocks (for the drain
/// phase of the standard schedule).
pub trait Throttle: Protocol {
    /// Stop producing new blocks; keep relaying/committing.
    fn stop_producing(&mut self);
}

/// Phase lengths of the standard schedule, in network ticks.
#[derive(Clone, Copy, Debug)]
pub struct RunSchedule {
    pub main_ticks: u64,
    pub settle_ticks: u64,
    /// Reads pause for this long right after the cut, so every replica has
    /// provably grown past the pre-cut scores before post-cut reads start
    /// (round-based protocols commit once per round; the grace must cover
    /// a full round plus δ).
    pub post_cut_grace: u64,
    pub growth_ticks: u64,
    pub drain_ticks: u64,
    pub read_every: u64,
}

impl Default for RunSchedule {
    fn default() -> Self {
        RunSchedule {
            main_ticks: 80,
            settle_ticks: 8,
            post_cut_grace: 14,
            growth_ticks: 40,
            drain_ticks: 10,
            read_every: 4,
        }
    }
}

/// Everything a finished system run exposes to classification and
/// reporting.
pub struct SystemRun {
    pub store: BlockStore,
    pub trace: Trace,
    pub correct: Vec<bool>,
    /// The convergence cut (microticks).
    pub cut: Time,
    /// Maximum branching degree over blocks applied in the run (1 = no
    /// forks anywhere).
    pub max_fork_degree: usize,
    /// Final chain at each correct process.
    pub final_chains: Vec<Blockchain>,
    /// Total blocks in the arena (excluding genesis).
    pub blocks_minted: usize,
}

impl SystemRun {
    /// SC / EC / Neither under the run's own cut (length score, accept-all
    /// predicate — validity is oracle-side in the refined world).
    pub fn consistency_class(&self) -> ConsistencyClass {
        let params = ConsistencyParams {
            store: &self.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(self.cut),
        };
        classify(&self.trace.history, &params)
    }

    /// Do all correct processes end on the same chain?
    pub fn converged(&self) -> bool {
        self.final_chains.windows(2).all(|w| w[0] == w[1])
    }
}

/// Runs the standard schedule against a prepared world.
pub fn standard_run<P: Throttle>(mut world: World<P>, schedule: &RunSchedule) -> SystemRun {
    world.read_every = Some(schedule.read_every);
    world.run_ticks(schedule.main_ticks);
    world.run_ticks(schedule.settle_ticks);
    let cut = world.now();
    // Grace: growth continues, observable reads pause until the first
    // post-cut block has certainly committed and propagated.
    world.read_every = None;
    world.run_ticks(schedule.post_cut_grace);
    world.read_every = Some(schedule.read_every);
    world.run_ticks(schedule.growth_ticks);
    for p in 0..world.n() {
        world.protocol_mut(ProcessId(p as u32)).stop_producing();
    }
    world.run_ticks(schedule.drain_ticks);
    world.read_all();
    world.run_ticks(1);
    world.read_all();

    let correct = world.correct_mask();
    let max_fork_degree = (0..world.store.len() as u32)
        .map(|i| world.store.children(btadt_core::ids::BlockId(i)).len())
        .max()
        .unwrap_or(0);
    let final_chains: Vec<Blockchain> = (0..world.n())
        .filter(|&i| correct[i])
        .map(|i| world.replicas[i].read(&world.store, world.selection()))
        .collect();
    let blocks_minted = world.store.len() - 1;
    SystemRun {
        store: world.store.clone(),
        trace: world.trace.clone(),
        correct,
        cut,
        max_fork_degree,
        final_chains,
        blocks_minted,
    }
}

/// Deterministic toy-transaction stream shared by the workload-bearing
/// models (Bitcoin payloads, Hyperledger endorsement flow).
#[derive(Clone, Debug)]
pub struct TxStream {
    seed: u64,
    next_id: u64,
}

impl TxStream {
    pub fn new(seed: u64) -> Self {
        TxStream { seed, next_id: 1 }
    }

    /// The next `count` transactions.
    pub fn take(&mut self, count: usize) -> Vec<btadt_core::block::Tx> {
        use btadt_core::ids::splitmix64_at;
        (0..count)
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                let r = splitmix64_at(self.seed, id);
                btadt_core::block::Tx::new(id, (r % 64) as u32, ((r >> 8) % 64) as u32, 1 + r % 100)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_stream_is_deterministic_and_unique() {
        let mut a = TxStream::new(7);
        let mut b = TxStream::new(7);
        let xa = a.take(10);
        let xb = b.take(10);
        assert_eq!(xa, xb);
        let mut ids: Vec<u64> = xa.iter().map(|t| t.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10, "tx ids unique");
        // Different seeds give different flows.
        let mut c = TxStream::new(8);
        assert_ne!(xa, c.take(10));
    }

    #[test]
    fn default_schedule_is_sane() {
        let s = RunSchedule::default();
        assert!(s.main_ticks > 0 && s.read_every > 0);
        assert!(s.settle_ticks >= 2, "cut needs settling room");
    }
}
