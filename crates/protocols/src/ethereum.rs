//! Ethereum (§5.2): permissionless, memory-hard proof-of-work, mapped to
//! **R(BT-ADT_EC, Θ_P)**.
//!
//! Differences from the Bitcoin model, following the paper:
//!
//! * the merit `α_p` is "bounded by the ability to move data in memory"
//!   (commodity-hardware PoW) — in the abstraction this is the same tape
//!   lottery with a differently interpreted weight vector, typically much
//!   *flatter* than hash-power distributions;
//! * `f` "returns the blockchain which has required the most work …
//!   implemented through the GHOST algorithm [30]" — the
//!   [`Ghost`](btadt_core::selection::Ghost) heaviest-subtree rule;
//! * the block interval : delivery-delay ratio is more aggressive, so
//!   forks ("uncles") are more frequent — which is exactly the regime
//!   GHOST was designed for. Each replica maintains GHOST's subtree
//!   weights incrementally (`SelectionFn::on_insert` updates the
//!   leaf→root path per applied block), so the uncle-heavy regime does
//!   not degrade per-delivery selection to a full-tree weight rebuild.

use crate::bitcoin::NakamotoMiner;
use crate::common::{standard_run, RunSchedule, SystemRun};
use btadt_core::selection::{Ghost, GhostWeight};
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{NetworkModel, World};

/// Configuration of an Ethereum run.
#[derive(Clone, Debug)]
pub struct EthereumConfig {
    pub n: usize,
    /// Memory-bandwidth weights (uniform if `None` — commodity hardware).
    pub bandwidth: Option<Vec<f64>>,
    /// Expected wins per tick across the network (higher than Bitcoin's
    /// default: faster blocks, more uncles).
    pub rate: f64,
    pub delta: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
    /// GHOST subtree weighting.
    pub ghost_weight: GhostWeight,
}

impl Default for EthereumConfig {
    fn default() -> Self {
        EthereumConfig {
            n: 8,
            bandwidth: None,
            rate: 1.0,
            delta: 3,
            schedule: RunSchedule::default(),
            seed: 0xE7E7_0001,
            ghost_weight: GhostWeight::BlockCount,
        }
    }
}

/// Runs the Ethereum model.
pub fn run(cfg: &EthereumConfig) -> SystemRun {
    let merits = match &cfg.bandwidth {
        Some(w) => Merits::from_weights(w.clone()),
        None => Merits::uniform(cfg.n),
    };
    let oracle = ThetaOracle::prodigal(merits, cfg.rate, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let miners = (0..cfg.n)
        .map(|i| NakamotoMiner::new(cfg.seed ^ ((i as u64) << 8), 2))
        .collect();
    let world: World<NakamotoMiner> = World::new(
        miners,
        oracle,
        net,
        Box::new(Ghost {
            weight: cfg.ghost_weight,
        }),
        cfg.seed,
    );
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn ethereum_is_eventually_consistent() {
        for seed in [1u64, 2, 3] {
            let run = run(&EthereumConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 5);
            assert!(run.converged(), "seed {seed}: GHOST converges");
            assert!(
                run.consistency_class() >= ConsistencyClass::Eventual,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn high_rate_forks_more_than_bitcoin_defaults() {
        // Ethereum's faster blocks (rate 1.0 vs 0.7) produce at least as
        // many fork points on matched seeds.
        let eth = run(&EthereumConfig {
            seed: 4,
            ..Default::default()
        });
        assert!(
            eth.max_fork_degree >= 2,
            "rate 1.0 with δ=3 must fork (got degree {})",
            eth.max_fork_degree
        );
    }

    #[test]
    fn ghost_work_variant_runs() {
        let run = run(&EthereumConfig {
            ghost_weight: GhostWeight::Work,
            seed: 5,
            ..Default::default()
        });
        assert!(run.converged());
        assert!(run.consistency_class() >= ConsistencyClass::Eventual);
    }

    #[test]
    fn deterministic() {
        let a = run(&EthereumConfig::default());
        let b = run(&EthereumConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
        assert_eq!(a.max_fork_degree, b.max_fork_degree);
    }
}
