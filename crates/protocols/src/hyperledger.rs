//! Hyperledger Fabric (§5.7): a permissioned execute-order-validate
//! blockchain, mapped to **R(BT-ADT_SC, Θ_F,k=1)**.
//!
//! The paper's mapping: any process reads, only `M ⊆ V` appends with merit
//! `1/|M|`; "transactions are executed by … *endorsers*; executed
//! transactions are then ordered through an atomic broadcast primitive so
//! as to gather them into a block … a leader election … determine[s] which
//! process will generate the next block. Transactions are appended in a
//! block until a *stop condition* is met — a maximal number of
//! transactions in a block or a maximal elapsed time since the first
//! transaction included … By construction a unique token (k = 1) is
//! consumed."
//!
//! The model: clients inject transactions every tick; endorsers execute
//! (stamp) them and forward to the ordering service (the leader, process
//! 0); the leader batches endorsed transactions until `max_txs` or
//! `max_age` fires, then cuts the block through the k = 1 oracle and
//! atomically broadcasts it (leader sequencing over FIFO synchronous
//! channels = total order).

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::{Payload, Tx};
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// Fabric messages: endorsed transactions flowing to the orderer.
#[derive(Clone, Debug)]
pub struct Endorsed {
    pub tx: Tx,
    pub endorser: ProcessId,
}

/// One Fabric node. Process 0 is the ordering-service leader; every
/// member is also an endorser; non-members only read.
#[derive(Clone, Debug)]
pub struct FabricNode {
    txs: TxStream,
    producing: bool,
    is_member: bool,
    is_orderer: bool,
    /// Stop condition 1: maximal number of transactions per block.
    max_txs: usize,
    /// Stop condition 2: maximal age (ticks) of the oldest pending tx.
    max_age: u64,
    pending: Vec<Endorsed>,
    oldest_pending_tick: Option<u64>,
    ticks: u64,
}

impl FabricNode {
    pub fn new(seed: u64, is_member: bool, is_orderer: bool, max_txs: usize, max_age: u64) -> Self {
        FabricNode {
            txs: TxStream::new(seed),
            producing: true,
            is_member,
            is_orderer,
            max_txs,
            max_age,
            pending: Vec::new(),
            oldest_pending_tick: None,
            ticks: 0,
        }
    }

    /// Has a stop condition fired?
    fn stop_condition(&self) -> bool {
        if self.pending.len() >= self.max_txs {
            return true;
        }
        match self.oldest_pending_tick {
            Some(t0) => !self.pending.is_empty() && self.ticks.saturating_sub(t0) >= self.max_age,
            None => false,
        }
    }
}

impl Protocol for FabricNode {
    type Custom = Endorsed;

    fn on_tick(&mut self, ctx: &mut Ctx<'_, Endorsed>) {
        self.ticks += 1;

        // Endorsers execute one client transaction per tick and forward
        // the endorsement to the orderer.
        if self.is_member && self.producing {
            let tx = self.txs.take(1)[0];
            let endorsement = Endorsed {
                tx,
                endorser: ctx.me,
            };
            if self.is_orderer {
                if self.oldest_pending_tick.is_none() {
                    self.oldest_pending_tick = Some(self.ticks);
                }
                self.pending.push(endorsement);
            } else {
                ctx.send_custom(ProcessId(0), endorsement);
            }
        }

        // The ordering service cuts a block when a stop condition fires.
        // The batch honours max_txs even when endorsements overshot the
        // threshold between checks; the surplus stays pending.
        if self.is_orderer && self.stop_condition() {
            let take = self.pending.len().min(self.max_txs);
            let batch: Vec<Tx> = self.pending.drain(..take).map(|e| e.tx).collect();
            self.oldest_pending_tick = if self.pending.is_empty() {
                None
            } else {
                Some(self.ticks)
            };
            let parent = ctx.tip();
            let payload = Payload::Transactions(batch);
            for _ in 0..64 {
                if let Some(block) = ctx.mine_at(parent, payload.clone(), 1) {
                    // Atomic broadcast = leader-sequenced dissemination.
                    ctx.broadcast_block(parent, block);
                    break;
                }
            }
        }
    }

    fn on_custom(&mut self, _ctx: &mut Ctx<'_, Endorsed>, _from: ProcessId, msg: Endorsed) {
        if self.is_orderer {
            if self.oldest_pending_tick.is_none() {
                self.oldest_pending_tick = Some(self.ticks);
            }
            self.pending.push(msg);
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, Endorsed>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for FabricNode {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a Fabric run.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    pub n: usize,
    /// Member (endorser) indices; process 0 must be among them (orderer).
    pub members: Vec<usize>,
    pub delta: u64,
    pub max_txs: usize,
    pub max_age: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            n: 8,
            members: vec![0, 1, 2, 3],
            delta: 3,
            max_txs: 12,
            max_age: 6,
            schedule: RunSchedule::default(),
            seed: 0xFAB2_1C01,
        }
    }
}

/// Runs the Hyperledger Fabric model.
pub fn run(cfg: &FabricConfig) -> SystemRun {
    assert!(cfg.members.contains(&0), "process 0 is the orderer");
    let merits = Merits::consortium(cfg.n, &cfg.members);
    let oracle = ThetaOracle::frugal(1, merits, cfg.members.len() as f64 * 0.9, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let nodes = (0..cfg.n)
        .map(|i| {
            FabricNode::new(
                cfg.seed ^ ((i as u64) << 8),
                cfg.members.contains(&i),
                i == 0,
                cfg.max_txs,
                cfg.max_age,
            )
        })
        .collect();
    let world: World<FabricNode> = World::new(nodes, oracle, net, Box::new(LongestChain), cfg.seed);
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::block::Payload;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn fabric_is_strongly_consistent() {
        for seed in [1u64, 2] {
            let run = run(&FabricConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 3, "seed {seed}");
            assert_eq!(run.max_fork_degree, 1);
            assert_eq!(run.consistency_class(), ConsistencyClass::Strong);
        }
    }

    #[test]
    fn stop_conditions_bound_block_size() {
        let cfg = FabricConfig::default();
        let run = run(&cfg);
        for b in run.store.ids().skip(1) {
            match &run.store.get(b).payload {
                Payload::Transactions(txs) => {
                    assert!(
                        txs.len() <= cfg.max_txs,
                        "block {b} exceeds max_txs: {}",
                        txs.len()
                    );
                }
                other => panic!("fabric blocks carry transactions, got {other:?}"),
            }
        }
    }

    #[test]
    fn max_age_cuts_small_blocks() {
        // With a tiny tx inflow (1 member = only the orderer) the age
        // condition, not the size condition, cuts blocks.
        let cfg = FabricConfig {
            members: vec![0],
            max_txs: 1_000,
            max_age: 4,
            seed: 3,
            ..Default::default()
        };
        let run = run(&cfg);
        assert!(run.blocks_minted > 2);
        for b in run.store.ids().skip(1) {
            if let Payload::Transactions(txs) = &run.store.get(b).payload {
                assert!(txs.len() <= 6, "age-cut blocks stay small: {}", txs.len());
            }
        }
    }

    #[test]
    fn only_the_orderer_produces() {
        let run = run(&FabricConfig::default());
        for b in run.store.ids().skip(1) {
            assert_eq!(run.store.get(b).producer, ProcessId(0));
        }
    }

    #[test]
    fn deterministic() {
        let a = run(&FabricConfig::default());
        let b = run(&FabricConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
    }
}
