//! # btadt-protocols — the Table-1 systems (§5)
//!
//! Executable models of the seven blockchains the paper maps onto its
//! framework, each built over `btadt-sim` and classified empirically by
//! fork coherence + consistency class:
//!
//! | System | Module | Paper's class |
//! |---|---|---|
//! | Bitcoin | [`bitcoin`] | R(BT-ADT_EC, Θ_P) |
//! | Ethereum (GHOST) | [`ethereum`] | R(BT-ADT_EC, Θ_P) |
//! | Algorand | [`algorand`] | R(BT-ADT_SC, Θ_F,k=1) w.h.p |
//! | ByzCoin | [`byzcoin`] | R(BT-ADT_SC, Θ_F,k=1) |
//! | PeerCensus | [`peercensus`] | R(BT-ADT_SC, Θ_F,k=1) |
//! | Red Belly | [`redbelly`] | R(BT-ADT_SC, Θ_F,k=1) |
//! | Hyperledger Fabric | [`hyperledger`] | R(BT-ADT_SC, Θ_F,k=1) |
//!
//! [`classify::table1`] regenerates Table 1; [`common`] holds the shared
//! run schedule and statistics. [`fruitchain`] adds the FruitChain [27]
//! variant §5.1 mentions, with the reward-fairness comparison.

pub mod algorand;
pub mod bitcoin;
pub mod byzcoin;
pub mod classify;
pub mod common;
pub mod ethereum;
pub mod fruitchain;
pub mod hyperledger;
pub mod peercensus;
pub mod redbelly;

pub use classify::{table1, Classification};
pub use common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
