//! The Table-1 classifier: runs every modeled system, measures its fork
//! coherence and consistency class, and checks the result against the
//! paper's mapping (§5, Table 1).

use crate::common::SystemRun;
use crate::{algorand, bitcoin, byzcoin, ethereum, hyperledger, peercensus, redbelly};
use btadt_core::criteria::{ConsistencyClass, CriterionKind};
use btadt_core::hierarchy::{OracleModel, RefinementClass};
use std::fmt;

/// One classified system.
pub struct Classification {
    /// System name as in Table 1.
    pub system: &'static str,
    /// The refinement the paper assigns (Table 1).
    pub expected: RefinementClass,
    /// Extra qualifier from the paper's row (e.g. "SC w.h.p").
    pub note: &'static str,
    /// What the run exhibited.
    pub observed_class: ConsistencyClass,
    /// Largest branching degree observed (1 = forkless).
    pub max_fork_degree: usize,
    /// Blocks committed.
    pub blocks: usize,
    /// Did all correct processes converge on one final chain?
    pub converged: bool,
}

impl Classification {
    /// Does the observation match the paper's mapping?
    ///
    /// * SC systems must classify Strong and stay forkless;
    /// * EC systems must classify at least Eventual; they sit strictly in
    ///   EC when a fork surfaced in reads (which specific seeds may or may
    ///   not produce — the *class* guarantee is "at least EC, never
    ///   guaranteed SC").
    pub fn matches_paper(&self) -> bool {
        match self.expected.criterion {
            CriterionKind::Strong => {
                self.observed_class == ConsistencyClass::Strong && self.max_fork_degree <= 1
            }
            CriterionKind::Eventual => self.observed_class >= ConsistencyClass::Eventual,
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<28} {:<8} forks≤{:<2} blocks={:<4} {}",
            self.system,
            format!("{}{}", self.expected.label(), self.note),
            format!("{}", self.observed_class),
            self.max_fork_degree,
            self.blocks,
            if self.matches_paper() { "✓" } else { "✗" }
        )
    }
}

fn classify_run(
    system: &'static str,
    expected: RefinementClass,
    note: &'static str,
    run: &SystemRun,
) -> Classification {
    Classification {
        system,
        expected,
        note,
        observed_class: run.consistency_class(),
        max_fork_degree: run.max_fork_degree,
        blocks: run.blocks_minted,
        converged: run.converged(),
    }
}

fn ec_prodigal() -> RefinementClass {
    RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal)
}

fn sc_k1() -> RefinementClass {
    RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 })
}

/// Runs all seven systems with the given base seed and returns their
/// classifications in the paper's Table-1 order.
pub fn table1(seed: u64) -> Vec<Classification> {
    let bitcoin_run = bitcoin::run(&bitcoin::BitcoinConfig {
        seed,
        ..Default::default()
    });
    let ethereum_run = ethereum::run(&ethereum::EthereumConfig {
        seed,
        ..Default::default()
    });
    let algorand_run = algorand::run(&algorand::AlgorandConfig {
        seed,
        ..Default::default()
    });
    let byzcoin_run = byzcoin::run(&byzcoin::ByzCoinConfig {
        seed,
        ..Default::default()
    });
    let peercensus_run = peercensus::run(&peercensus::PeerCensusConfig {
        seed,
        ..Default::default()
    });
    let redbelly_run = redbelly::run(&redbelly::RedBellyConfig {
        seed,
        ..Default::default()
    });
    let fabric_run = hyperledger::run(&hyperledger::FabricConfig {
        seed,
        ..Default::default()
    });

    vec![
        classify_run("Bitcoin", ec_prodigal(), "", &bitcoin_run),
        classify_run("Ethereum", ec_prodigal(), "", &ethereum_run),
        classify_run("Algorand", sc_k1(), " SC w.h.p", &algorand_run),
        classify_run("ByzCoin", sc_k1(), "", &byzcoin_run),
        classify_run("PeerCensus", sc_k1(), "", &peercensus_run),
        classify_run("Redbelly", sc_k1(), "", &redbelly_run),
        classify_run("Hyperledger", sc_k1(), "", &fabric_run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_mapping() {
        let rows = table1(0xB10C);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(
                row.matches_paper(),
                "{}: observed {} against expected {}",
                row.system,
                row.observed_class,
                row.expected
            );
            assert!(row.blocks > 0, "{}: no progress", row.system);
            assert!(row.converged, "{}: no convergence", row.system);
        }
    }

    #[test]
    fn sc_systems_are_forkless_ec_systems_fork_somewhere() {
        let rows = table1(0xB10C);
        let forked_ec = rows
            .iter()
            .filter(|r| r.expected.criterion == CriterionKind::Eventual)
            .any(|r| r.max_fork_degree > 1);
        assert!(forked_ec, "at least one EC system must exhibit forks");
        for r in rows
            .iter()
            .filter(|r| r.expected.criterion == CriterionKind::Strong)
        {
            assert_eq!(r.max_fork_degree, 1, "{} must stay forkless", r.system);
        }
    }

    #[test]
    fn display_renders_all_rows() {
        for row in table1(0xB10C) {
            let line = format!("{row}");
            assert!(line.contains(row.system));
        }
    }
}
