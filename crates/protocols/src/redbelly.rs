//! Red Belly (§5.6): a consortium blockchain with leaderless deterministic
//! Byzantine consensus, mapped to **R(BT-ADT_SC, Θ_F,k=1)**.
//!
//! The paper's mapping: "any process may read … but a predefined subset
//! `M ⊆ V` of processes are allowed to append. Each `p ∈ M` has merit
//! `α_p = 1/|M|`, the others 0 … The `consumeToken` operation, implemented
//! by a Byzantine consensus algorithm run by all processes in `V`, returns
//! true for the uniquely decided block. Thus the Red Belly BlockTree
//! contains a unique blockchain, meaning the selection function `f` is the
//! trivial projection `BT ↦ BC`."
//!
//! The model: every round, all consortium members submit proposals
//! (superblock ingredients); the round's decision is deterministic —
//! leaderless — as the smallest proposal digest; the deciding member
//! commits through the k = 1 oracle; readers (non-members included) use
//! [`TrivialProjection`], which *asserts* the tree is a chain — the
//! strongest possible runtime check that k = 1 held.

use crate::common::{standard_run, RunSchedule, SystemRun, Throttle, TxStream};
use btadt_core::block::Payload;
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::TrivialProjection;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{gossip_applied, Ctx, NetworkModel, Protocol, World};

/// A consortium proposal for the current round.
#[derive(Clone, Debug)]
pub struct Proposal {
    pub round: u64,
    pub parent: BlockId,
    pub digest: u64,
    pub from: ProcessId,
}

/// One Red Belly process (member or reader).
#[derive(Clone, Debug)]
pub struct RedBellyNode {
    txs: TxStream,
    producing: bool,
    is_member: bool,
    round_len: u64,
    proposals: Vec<Proposal>,
    ticks: u64,
}

impl RedBellyNode {
    pub fn new(seed: u64, round_len: u64, is_member: bool) -> Self {
        RedBellyNode {
            txs: TxStream::new(seed),
            producing: true,
            is_member,
            round_len,
            proposals: Vec::new(),
            ticks: 0,
        }
    }
}

impl Protocol for RedBellyNode {
    type Custom = Proposal;

    fn on_tick(&mut self, ctx: &mut Ctx<'_, Proposal>) {
        self.ticks += 1;
        let round = self.ticks / self.round_len;
        let phase = self.ticks % self.round_len;

        // Phase 1 (round start): members broadcast proposals.
        if phase == 1 && self.is_member && self.producing {
            let prop = Proposal {
                round,
                parent: ctx.tip(),
                digest: ctx.random(),
                from: ctx.me,
            };
            self.proposals.push(prop.clone());
            ctx.broadcast_custom(prop);
        }

        // Phase 0 (round end): leaderless deterministic decision — the
        // smallest digest among this round's proposals for the local tip.
        if phase == 0 {
            let parent = ctx.tip();
            let decided = self
                .proposals
                .iter()
                .filter(|p| p.parent == parent && p.round + 1 == round)
                .min_by_key(|p| (p.digest, p.from))
                .cloned();
            if let Some(p) = decided {
                if p.from == ctx.me {
                    let payload = Payload::Transactions(self.txs.take(5));
                    for _ in 0..64 {
                        if let Some(block) = ctx.mine_at(parent, payload.clone(), 1) {
                            ctx.broadcast_block(parent, block);
                            break;
                        }
                    }
                }
            }
            self.proposals.retain(|p| p.round >= round);
        }
    }

    fn on_custom(&mut self, _ctx: &mut Ctx<'_, Proposal>, _from: ProcessId, msg: Proposal) {
        self.proposals.push(msg);
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, Proposal>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

impl Throttle for RedBellyNode {
    fn stop_producing(&mut self) {
        self.producing = false;
    }
}

/// Configuration of a Red Belly run.
#[derive(Clone, Debug)]
pub struct RedBellyConfig {
    /// Total processes (members + readers).
    pub n: usize,
    /// Consortium member indices `M ⊆ V`.
    pub members: Vec<usize>,
    pub delta: u64,
    pub round_len: u64,
    pub schedule: RunSchedule,
    pub seed: u64,
}

impl Default for RedBellyConfig {
    fn default() -> Self {
        RedBellyConfig {
            n: 8,
            members: vec![0, 1, 2, 3],
            delta: 3,
            round_len: 6,
            schedule: RunSchedule::default(),
            seed: 0x2EDB_E117,
        }
    }
}

/// Runs the Red Belly model.
pub fn run(cfg: &RedBellyConfig) -> SystemRun {
    assert!(cfg.round_len > cfg.delta, "decision needs the proposals in");
    let merits = Merits::consortium(cfg.n, &cfg.members);
    let oracle = ThetaOracle::frugal(1, merits, cfg.members.len() as f64 * 0.9, cfg.seed);
    let net = NetworkModel::synchronous(cfg.delta, cfg.seed ^ 0x4E_4554);
    let nodes = (0..cfg.n)
        .map(|i| {
            RedBellyNode::new(
                cfg.seed ^ ((i as u64) << 8),
                cfg.round_len,
                cfg.members.contains(&i),
            )
        })
        .collect();
    let world: World<RedBellyNode> =
        World::new(nodes, oracle, net, Box::new(TrivialProjection), cfg.seed);
    standard_run(world, &cfg.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::criteria::ConsistencyClass;

    #[test]
    fn redbelly_is_strongly_consistent_with_unique_chain() {
        for seed in [1u64, 2] {
            let run = run(&RedBellyConfig {
                seed,
                ..Default::default()
            });
            assert!(run.blocks_minted > 2, "seed {seed}");
            // TrivialProjection would have panicked on any fork; belt and
            // braces:
            assert_eq!(run.max_fork_degree, 1);
            assert_eq!(run.consistency_class(), ConsistencyClass::Strong);
            assert!(run.converged());
        }
    }

    #[test]
    fn only_members_produce_blocks() {
        let cfg = RedBellyConfig::default();
        let run = run(&cfg);
        for b in run.store.ids().skip(1) {
            let producer = run.store.get(b).producer;
            assert!(
                cfg.members.contains(&producer.index()),
                "reader {producer} produced a block"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = run(&RedBellyConfig::default());
        let b = run(&RedBellyConfig::default());
        assert_eq!(a.blocks_minted, b.blocks_minted);
    }
}
