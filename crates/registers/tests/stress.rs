//! Concurrency stress tests for the §4.1 objects: high-thread contention,
//! repeated trials, and cross-object consistency under load.

use btadt_core::ids::BlockId;
use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use btadt_registers::{
    run_trial, AtomicSnapshot, CasFromCt, CasRegister, Consensus, ConsumeTokenCell,
    OracleConsensus, ProdigalCtCell, EMPTY,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn ct_cell_many_threads_many_trials() {
    for trial in 0..40u64 {
        let cell = Arc::new(ConsumeTokenCell::new());
        let decisions: Vec<u64> = std::thread::scope(|s| {
            (1..=16u64)
                .map(|v| {
                    let cell = Arc::clone(&cell);
                    s.spawn(move || cell.consume_token(v + trial * 100))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let winner = cell.get();
        assert!(decisions.iter().all(|&d| d == winner), "trial {trial}");
    }
}

#[test]
fn cas_from_ct_composes_into_long_chains_of_agreement() {
    // An array of one-shot cells decided in sequence by racing threads:
    // every cell must end agreed, and all threads must observe identical
    // arrays (a mini ledger built from Fig. 10 objects).
    const CELLS: usize = 32;
    let cells: Arc<Vec<CasFromCt>> = Arc::new((0..CELLS).map(|_| CasFromCt::new()).collect());
    let views: Vec<Vec<u64>> = std::thread::scope(|s| {
        (1..=8u64)
            .map(|me| {
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    let mut view = Vec::with_capacity(CELLS);
                    for (i, cell) in cells.iter().enumerate() {
                        let propose = me * 1_000 + i as u64 + 1;
                        let prev = cell.compare_and_swap_from_empty(propose);
                        view.push(if prev == EMPTY { propose } else { prev });
                    }
                    view
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for w in views.windows(2) {
        assert_eq!(w[0], w[1], "all threads agree on the whole ledger");
    }
}

#[test]
fn protocol_a_hammered_with_many_seeds() {
    for seed in 0..25u64 {
        let n = 8;
        let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.7, seed);
        let consensus = OracleConsensus::new(SharedOracle::new(oracle));
        let report = run_trial(&consensus, n);
        assert!(report.agreement(), "seed {seed}: {:?}", report.decisions);
        assert!(report.validity(), "seed {seed}");
    }
}

#[test]
fn consensus_objects_are_single_use_and_sticky() {
    // Late proposers arriving long after the decision still adopt it, and
    // repeated proposals by the same process are idempotent in outcome.
    let c = OracleConsensus::new(SharedOracle::new(ThetaOracle::frugal(
        1,
        Merits::uniform(4),
        3.0,
        77,
    )));
    let first = c.propose(0, 5);
    for round in 0..10 {
        let again = c.propose((round % 4) as usize, 90 + round);
        assert_eq!(again, first, "decision is permanent");
    }
}

#[test]
fn snapshot_heavy_mixed_load_stays_linearizable() {
    let n = 6;
    let snap = Arc::new(AtomicSnapshot::new(n, 0u64));
    let torn = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for w in 0..n {
            let snap = Arc::clone(&snap);
            s.spawn(move || {
                for i in 1..=300u64 {
                    snap.update(w, i * (w as u64 + 1));
                }
            });
        }
        for _ in 0..3 {
            let snap = Arc::clone(&snap);
            let torn = Arc::clone(&torn);
            s.spawn(move || {
                let mut last: Option<Vec<u64>> = None;
                for _ in 0..300 {
                    let (_, seqs) = snap.scan_with_seqs();
                    if let Some(prev) = &last {
                        // Per-scanner monotonicity: seqs never regress.
                        if prev.iter().zip(&seqs).any(|(a, b)| a > b) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    last = Some(seqs);
                }
            });
        }
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0, "no regressing scans");
}

#[test]
fn prodigal_cell_under_full_contention_loses_nothing() {
    for trial in 0..10u64 {
        let n = 12;
        let cell = Arc::new(ProdigalCtCell::new(n));
        std::thread::scope(|s| {
            for m in 0..n {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    cell.consume_token(m, (m as u64 + 1) * 7 + trial);
                });
            }
        });
        assert_eq!(cell.get().len(), n, "trial {trial}: every token lands");
    }
}

#[test]
fn cas_register_general_cas_chain() {
    // Threads cooperatively increment through CAS retry loops: the final
    // value equals the number of increments (atomicity under contention).
    let cell = Arc::new(CasRegister::new(1));
    let per_thread = 200u64;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let cur = cell.read();
                        if cell.compare_and_swap(cur, cur + 1) == cur {
                            break;
                        }
                    }
                }
            });
        }
    });
    assert_eq!(cell.read(), 1 + 4 * per_thread);
}

#[test]
fn mixed_oracle_and_cells_share_one_truth() {
    // The shared oracle's K[b0] and a mirror CT cell decided by the same
    // winners agree across a contended run.
    let oracle = Arc::new(SharedOracle::new(ThetaOracle::frugal(
        1,
        Merits::uniform(6),
        5.0,
        123,
    )));
    let mirror = Arc::new(ConsumeTokenCell::new());
    std::thread::scope(|s| {
        for who in 0..6usize {
            let oracle = Arc::clone(&oracle);
            let mirror = Arc::clone(&mirror);
            s.spawn(move || {
                for _ in 0..10_000 {
                    if let Some(g) = oracle.get_token(who, BlockId::GENESIS) {
                        let block = BlockId(who as u32 + 1);
                        let set = oracle.consume_token(&g, block);
                        // Mirror the oracle's winner into the plain cell.
                        mirror.consume_token(set[0].0 as u64);
                        return;
                    }
                }
            });
        }
    });
    let k = oracle.consumed_for(BlockId::GENESIS);
    assert_eq!(k.len(), 1);
    assert_eq!(mirror.get(), k[0].0 as u64, "cell mirrors the oracle");
}
