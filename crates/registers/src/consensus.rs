//! Consensus (Def. 4.1) and Protocol A (Fig. 11): wait-free consensus from
//! the frugal oracle with k = 1 — the constructive half of Thm. 4.2
//! (Θ_F,k=1 has consensus number ∞).
//!
//! Def. 4.1 (blockchain-flavoured Consensus, Validity as in [11]):
//!
//! * **Termination** — every correct process eventually decides;
//! * **Integrity** — no process decides twice;
//! * **Agreement** — all deciding processes decide the same block;
//! * **Validity** — the decided block satisfies the predicate `P` (it is a
//!   *valid* block — possibly proposed by a faulty process).
//!
//! Protocol A (Fig. 11):
//!
//! ```text
//! propose(b):
//!     validBlock ← ⊥; validBlockSet ← ∅          // k = 1 ⇒ singleton
//!     while validBlock = ⊥:
//!         validBlock ← getToken(b0, b)
//!     validBlockSet ← consumeToken(validBlock)    // may differ from own!
//!     decide(validBlockSet)
//! ```
//!
//! The first consumer installs its block into `K[b0]` (cardinality 1); the
//! set returned to *every* consumer is that singleton, so everyone decides
//! the same valid block.

use crate::cas::{CasRegister, EMPTY};
use btadt_core::ids::BlockId;
use btadt_oracle::{KBound, SharedOracle};

/// A single-shot consensus object: `propose` returns the decided value.
pub trait Consensus: Sync {
    /// Proposes `value` on behalf of process `who`; returns the decision.
    fn propose(&self, who: usize, value: u64) -> u64;
}

/// How long `propose` may retry `getToken` before declaring the run
/// wedged: Protocol A's Termination assumes the oracle eventually grants
/// every correct process a token, so a zero-rate oracle (or an exhausted
/// merit tape) is a broken environment — fail loudly with a diagnostic
/// instead of spinning until the CI timeout kills the job. Matches the
/// frugal-gate deadline in `btadt_sim::mtrun`.
pub const PROPOSE_STALL_LIMIT: std::time::Duration = std::time::Duration::from_secs(20);

/// Protocol A: consensus from Θ_F,k=1 (Fig. 11).
pub struct OracleConsensus {
    oracle: SharedOracle,
    /// The object all tokens/consumes target (the paper uses `b0`).
    anchor: BlockId,
    /// getToken retry budget before `propose` panics (see
    /// [`PROPOSE_STALL_LIMIT`]).
    stall_limit: std::time::Duration,
}

impl OracleConsensus {
    /// Wraps a shared Θ_F,k=1 oracle. Panics if the oracle's bound is not
    /// k = 1: Protocol A's Agreement argument needs the singleton set.
    pub fn new(oracle: SharedOracle) -> Self {
        Self::with_stall_limit(oracle, PROPOSE_STALL_LIMIT)
    }

    /// [`new`](Self::new) with an explicit getToken-retry deadline (tests
    /// of the wedge diagnostic want a short one).
    pub fn with_stall_limit(oracle: SharedOracle, stall_limit: std::time::Duration) -> Self {
        assert_eq!(
            oracle.k(),
            KBound::Finite(1),
            "Protocol A requires the frugal oracle with k = 1"
        );
        OracleConsensus {
            oracle,
            anchor: BlockId::GENESIS,
            stall_limit,
        }
    }

    /// The oracle (inspection).
    pub fn oracle(&self) -> &SharedOracle {
        &self.oracle
    }
}

impl Consensus for OracleConsensus {
    fn propose(&self, who: usize, value: u64) -> u64 {
        assert_ne!(value, EMPTY, "EMPTY encoding reserved");
        // The decision travels as a BlockId (u32): a wider proposal would
        // silently truncate and decide a *different* value than proposed —
        // a Validity violation — so refuse it up front.
        assert!(
            u32::try_from(value).is_ok(),
            "proposal {value} exceeds the BlockId (u32) encoding: Protocol A \
             would decide the truncated value {} instead, violating Validity",
            value as u32
        );
        // while validBlock = ⊥: validBlock ← getToken(b0, b)
        let deadline = std::time::Instant::now() + self.stall_limit;
        let grant = loop {
            if let Some(g) = self.oracle.get_token(who, self.anchor) {
                break g;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "OracleConsensus::propose wedged: p{who} got no token for \
                 {} within {:?} ({} tape cells consumed) — a zero-rate \
                 oracle or exhausted merit tape cannot terminate Protocol A",
                self.anchor,
                self.stall_limit,
                self.oracle.tokens_granted()
            );
            std::hint::spin_loop();
        };
        // validBlockSet ← consumeToken(validBlock)
        let set = self.oracle.consume_token(&grant, BlockId(value as u32));
        k1_winner(self.anchor, &set).0 as u64
    }
}

/// The decision under k = 1: `set` is `get(K, anchor)` right after a
/// genuine consume, so it holds exactly the singleton everyone decides
/// on. An empty set means the oracle broke its own Θ-ADT contract —
/// consumeToken with a genuine, unspent token must leave at least one
/// block in `K[anchor]` and always returns `get(K, h)` — and both decide
/// paths ([`OracleConsensus`] and
/// [`crate::tree_consensus::TreeConsensus`]) say so by name instead of
/// panicking with an out-of-bounds index.
pub(crate) fn k1_winner(anchor: BlockId, set: &[BlockId]) -> BlockId {
    assert!(
        !set.is_empty(),
        "oracle invariant broken: consumeToken(K[{anchor}]) returned an \
         empty set after a genuine consume — get(K, h) must contain the \
         first admitted block forever after"
    );
    debug_assert_eq!(set.len(), 1, "K[{anchor}] has cardinality 1 under k = 1");
    set[0]
}

/// Consensus from Compare&Swap (the Herlihy-style construction the paper
/// leans on via Thm. 4.1: CT ⇒ CAS ⇒ consensus). Also usable with
/// [`crate::reduction::CasFromCt`]-backed cells.
pub struct CasConsensus {
    cell: CasRegister,
}

impl CasConsensus {
    pub fn new() -> Self {
        CasConsensus {
            cell: CasRegister::new(EMPTY),
        }
    }
}

impl Default for CasConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl Consensus for CasConsensus {
    fn propose(&self, _who: usize, value: u64) -> u64 {
        assert_ne!(value, EMPTY, "EMPTY encoding reserved");
        let prev = self.cell.compare_and_swap(EMPTY, value);
        if prev == EMPTY {
            value
        } else {
            prev
        }
    }
}

/// Result of running one multi-threaded consensus trial, with the four
/// Def. 4.1 properties evaluated.
#[derive(Clone, Debug)]
pub struct ConsensusReport {
    /// Decision of each process, in process order.
    pub decisions: Vec<u64>,
    /// The proposed values, in process order.
    pub proposals: Vec<u64>,
}

impl ConsensusReport {
    /// Agreement: all decisions equal.
    pub fn agreement(&self) -> bool {
        self.decisions.windows(2).all(|w| w[0] == w[1])
    }

    /// Validity (Def. 4.1 / [11]): the decided value was proposed by *some*
    /// process (all proposals here are valid blocks by construction — the
    /// oracle only grants tokens on valid blocks).
    pub fn validity(&self) -> bool {
        self.decisions.iter().all(|d| self.proposals.contains(d))
    }

    /// Termination: every process decided (vacuously encoded by the report
    /// existing with one decision per process).
    pub fn termination(&self) -> bool {
        self.decisions.len() == self.proposals.len()
    }

    /// The agreed value (when agreement holds).
    pub fn decided(&self) -> Option<u64> {
        if self.agreement() {
            self.decisions.first().copied()
        } else {
            None
        }
    }
}

/// Runs `n` real threads proposing distinct values through `consensus`;
/// Integrity is structural (each thread calls `propose` exactly once).
pub fn run_trial<C: Consensus>(consensus: &C, n: usize) -> ConsensusReport {
    let proposals: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
    let decisions: Vec<u64> = std::thread::scope(|s| {
        proposals
            .iter()
            .enumerate()
            .map(|(who, &v)| s.spawn(move || consensus.propose(who, v)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("proposer must not panic"))
            .collect()
    });
    ConsensusReport {
        decisions,
        proposals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_oracle::{Merits, ThetaOracle};

    fn oracle_consensus(n: usize, seed: u64) -> OracleConsensus {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.8, seed);
        OracleConsensus::new(SharedOracle::new(oracle))
    }

    #[test]
    fn protocol_a_single_proposer() {
        let c = oracle_consensus(1, 1);
        assert_eq!(c.propose(0, 42), 42);
    }

    #[test]
    fn protocol_a_satisfies_def_4_1_across_seeds() {
        for seed in 0..15u64 {
            let n = 6;
            let c = oracle_consensus(n, seed);
            let report = run_trial(&c, n);
            assert!(report.termination(), "seed {seed}");
            assert!(report.agreement(), "seed {seed}: {:?}", report.decisions);
            assert!(report.validity(), "seed {seed}: {:?}", report.decisions);
            assert!(c.oracle().fork_coherent());
        }
    }

    #[test]
    fn cas_consensus_satisfies_def_4_1() {
        for _ in 0..20 {
            let c = CasConsensus::new();
            let report = run_trial(&c, 8);
            assert!(report.termination());
            assert!(report.agreement(), "{:?}", report.decisions);
            assert!(report.validity());
        }
    }

    #[test]
    fn decisions_are_sticky() {
        // Integrity across late proposers: a proposer arriving after the
        // decision still decides the same value.
        let c = oracle_consensus(3, 7);
        let first = c.propose(0, 1);
        let second = c.propose(1, 2);
        let third = c.propose(2, 3);
        assert_eq!(first, second);
        assert_eq!(second, third);
    }

    #[test]
    fn report_helpers() {
        let good = ConsensusReport {
            decisions: vec![2, 2],
            proposals: vec![1, 2],
        };
        assert!(good.agreement() && good.validity() && good.termination());
        assert_eq!(good.decided(), Some(2));

        let split = ConsensusReport {
            decisions: vec![1, 2],
            proposals: vec![1, 2],
        };
        assert!(!split.agreement());
        assert_eq!(split.decided(), None);

        let invalid = ConsensusReport {
            decisions: vec![9, 9],
            proposals: vec![1, 2],
        };
        assert!(!invalid.validity());
    }

    #[test]
    #[should_panic(expected = "k = 1")]
    fn protocol_a_rejects_prodigal_oracle() {
        let oracle = ThetaOracle::prodigal(Merits::uniform(2), 1.0, 0);
        let _ = OracleConsensus::new(SharedOracle::new(oracle));
    }

    /// Boundary regression: `u32::MAX` is the largest encodable proposal
    /// and must round-trip undamaged — the old `value as u32` truncation
    /// kicked in one past it.
    #[test]
    fn proposal_at_the_blockid_boundary_round_trips() {
        let c = oracle_consensus(1, 2);
        assert_eq!(c.propose(0, u32::MAX as u64), u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "exceeds the BlockId")]
    fn proposal_past_the_blockid_boundary_is_refused() {
        let c = oracle_consensus(1, 2);
        // Would previously truncate to 0 = EMPTY and "decide" a value
        // nobody proposed.
        c.propose(0, u32::MAX as u64 + 1);
    }

    /// A zero-rate oracle grants no tokens ever; `propose` must fail with
    /// the wedge diagnostic instead of spinning forever.
    #[test]
    #[should_panic(expected = "wedged")]
    fn zero_rate_oracle_panics_instead_of_hanging() {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(1), 0.0, 0);
        let c = OracleConsensus::with_stall_limit(
            SharedOracle::new(oracle),
            std::time::Duration::from_millis(50),
        );
        c.propose(0, 1);
    }
}
