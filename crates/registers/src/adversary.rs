//! The negative side of Thm. 4.3, illustrated executably.
//!
//! Θ_P has consensus number 1: it is implementable from Atomic Snapshot
//! (Fig. 12, [`crate::snapshot_ct`]), and objects with consensus number 1
//! cannot solve 2-process consensus. The *impossibility* itself is cited
//! (Herlihy [21], FLP [16]); what we can do executably is show that the
//! natural attempts to build consensus from a prodigal `consumeToken` admit
//! **agreement-violating schedules** — the valence argument's bad
//! executions, constructed concretely.
//!
//! The naive protocol: `propose(v) { K.consume(my_slot, v); decide(pick(K.scan())) }`
//! for any deterministic `pick` (first-written, min-slot, min-value …).
//! Because every consume succeeds under k = ∞, a process that runs solo
//! must decide its own value; interleave two solo-ish runs and the picks
//! diverge.

use crate::snapshot_ct::ProdigalCtCell;

/// Decision rule for the naive prodigal "consensus" attempt.
#[derive(Clone, Copy, Debug)]
pub enum PickRule {
    /// Decide the token in the lowest-numbered slot.
    MinSlot,
    /// Decide the smallest token value.
    MinValue,
}

/// One naive proposer step: consume own token, scan, pick.
pub fn naive_propose(cell: &ProdigalCtCell, slot: usize, value: u64, rule: PickRule) -> u64 {
    let view = cell.consume_token(slot, value);
    match rule {
        // Slot order is the order `consume_token` returns.
        PickRule::MinSlot => view[0],
        PickRule::MinValue => *view.iter().min().expect("own token present"),
    }
}

/// Constructs the agreement-violating schedule for the given rule:
/// process B runs completely before process A writes, so B's scan is a
/// B-only view while A's scan sees both — their picks differ.
///
/// Returns `(decision_a, decision_b)`; the caller asserts inequality.
pub fn divergent_schedule(rule: PickRule) -> (u64, u64) {
    let cell = ProdigalCtCell::new(2);
    // Schedule: B (slot 1, value 1) executes its whole propose first…
    let decide_b = naive_propose(&cell, 1, 1, rule);
    // …then A (slot 0, value 2) executes.
    let decide_a = naive_propose(&cell, 0, 2, rule);
    (decide_a, decide_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_slot_rule_diverges() {
        let (a, b) = divergent_schedule(PickRule::MinSlot);
        assert_eq!(b, 1, "B ran solo: decides own value");
        assert_eq!(a, 2, "A sees both, min slot is its own");
        assert_ne!(a, b, "agreement violated: Θ_P cannot arbitrate");
    }

    #[test]
    fn min_value_rule_diverges() {
        let (a, b) = divergent_schedule(PickRule::MinValue);
        assert_eq!(b, 1);
        assert_eq!(a, 1);
        // With MinValue this schedule happens to agree; build the mirror
        // schedule where the late writer holds the smaller value.
        let cell = ProdigalCtCell::new(2);
        let d_b = naive_propose(&cell, 1, 5, PickRule::MinValue); // solo: 5
        let d_a = naive_propose(&cell, 0, 3, PickRule::MinValue); // sees both: 3
        assert_eq!(d_b, 5);
        assert_eq!(d_a, 3);
        assert_ne!(d_a, d_b, "agreement violated");
    }

    #[test]
    fn contrast_frugal_k1_serializes_the_same_schedule() {
        // The same two-step schedule against the k = 1 cell agrees —
        // the synchronization power difference made concrete.
        use crate::cas::ConsumeTokenCell;
        let cell = ConsumeTokenCell::new();
        let d_b = cell.consume_token(1);
        let d_a = cell.consume_token(2);
        assert_eq!(d_b, 1);
        assert_eq!(d_a, 1, "k = 1: the late consumer adopts the winner");
    }
}
