//! Fig. 10 / Thm. 4.1: a wait-free implementation of `Compare&Swap` by
//! `consumeToken` in the Θ_F,k=1 case.
//!
//! ```text
//! compare&swap(K[h], {}, b^tknh_ℓ):
//!     returned_value ← consumeToken(b^tknh_ℓ)
//!     if returned_value == b^tknh_ℓ then return {}
//!     else return returned_value
//! ```
//!
//! The construction implements the *one-shot, from-empty* CAS — exactly
//! the synchronization consensus needs — so `consumeToken` inherits CAS's
//! consensus number ∞ (Herlihy [21]), which is the engine of Thm. 4.2.
//!
//! **Distinct-input precondition.** Fig. 10 detects success by comparing
//! the returned set with the proposed block; if two callers could pass the
//! *same* value, a late caller would wrongly observe "success". This is
//! why Thm. 4.1 stipulates inputs in `B'`: valid blocks are minted one per
//! token, hence pairwise distinct. The tests below exercise both the
//! guaranteed regime and the documented edge.

use crate::cas::{ConsumeTokenCell, EMPTY};

/// CAS-from-CT (Fig. 10). Wait-free: a single `consumeToken` call.
#[derive(Debug, Default)]
pub struct CasFromCt {
    ct: ConsumeTokenCell,
}

impl CasFromCt {
    pub fn new() -> Self {
        CasFromCt {
            ct: ConsumeTokenCell::new(),
        }
    }

    /// `compare&swap(K[h], {}, new)` per Fig. 10: returns `EMPTY` iff the
    /// caller installed `new` (the CAS "succeeded from empty"), otherwise
    /// the incumbent value.
    pub fn compare_and_swap_from_empty(&self, new: u64) -> u64 {
        let returned_value = self.ct.consume_token(new);
        if returned_value == new {
            EMPTY
        } else {
            returned_value
        }
    }

    /// Current cell content (test/inspection support).
    pub fn read(&self) -> u64 {
        self.ct.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::CasRegister;
    use std::sync::Arc;

    #[test]
    fn matches_native_cas_semantics_sequentially() {
        // Drive the same *distinct-value* operation sequence (the Thm. 4.1
        // regime: inputs are pairwise-distinct valid blocks) against the
        // reduction and a native CAS; observable results must coincide.
        let reduced = CasFromCt::new();
        let native = CasRegister::new(EMPTY);
        for &v in &[5u64, 9, 13, 21] {
            let r = reduced.compare_and_swap_from_empty(v);
            let n = native.compare_and_swap(EMPTY, v);
            assert_eq!(r, n, "value {v}");
        }
        assert_eq!(reduced.read(), native.read());
    }

    #[test]
    fn same_value_replay_is_the_documented_edge() {
        // Outside the distinct-input regime, Fig. 10's success test cannot
        // distinguish "I installed v" from "v was already there" — the
        // reason Thm. 4.1 requires inputs in B'.
        let reduced = CasFromCt::new();
        assert_eq!(reduced.compare_and_swap_from_empty(5), EMPTY);
        assert_eq!(
            reduced.compare_and_swap_from_empty(5),
            EMPTY,
            "replaying the incumbent value looks like success by design"
        );
        let native = CasRegister::new(EMPTY);
        assert_eq!(native.compare_and_swap(EMPTY, 5), EMPTY);
        assert_eq!(native.compare_and_swap(EMPTY, 5), 5, "native disagrees");
    }

    #[test]
    fn exactly_one_success_under_contention() {
        for trial in 0..20 {
            let c = Arc::new(CasFromCt::new());
            let results: Vec<(u64, u64)> = std::thread::scope(|s| {
                (1..=8u64)
                    .map(|v| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (v, c.compare_and_swap_from_empty(v)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winners: Vec<u64> = results
                .iter()
                .filter(|(_, r)| *r == EMPTY)
                .map(|(v, _)| *v)
                .collect();
            assert_eq!(winners.len(), 1, "trial {trial}: one CAS succeeds");
            let winner = winners[0];
            assert_eq!(c.read(), winner);
            for (v, r) in results {
                if v != winner {
                    assert_eq!(r, winner, "losers observe the incumbent");
                }
            }
        }
    }

    #[test]
    fn wait_free_single_call() {
        // The reduction must not loop: one consumeToken per CAS. We verify
        // by the cell's one-shot nature — two sequential calls return
        // without blocking regardless of outcome.
        let c = CasFromCt::new();
        assert_eq!(c.compare_and_swap_from_empty(1), EMPTY);
        assert_eq!(c.compare_and_swap_from_empty(2), 1);
        assert_eq!(c.compare_and_swap_from_empty(3), 1);
    }
}
