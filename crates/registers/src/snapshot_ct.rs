//! Fig. 12 / Thm. 4.3: `consumeToken` for the **prodigal** oracle Θ_P
//! implemented from Atomic Snapshot — hence Θ_P has consensus number 1
//! (Atomic Snapshot is wait-free implementable from plain registers [7]).
//!
//! ```text
//! consumeToken_h(tkn_m):
//!     R_{h,m} ← update(R_{h,m}, tkn_m)
//!     returned_value ← scan(R_{h,1}, …, R_{h,n})
//!     return returned_value
//! ```
//!
//! With `k = ∞` there is always room: token `tkn_m` gets its own register
//! `R_{h,m}`, the consume *always* succeeds, and the operation returns a
//! snapshot of `K[h]` including the caller's token. No synchronization
//! power is exercised — which is exactly why Θ_P cannot arbitrate forks.

use crate::snapshot::AtomicSnapshot;

/// `K[h]` for the prodigal oracle: one snapshot component per token slot.
pub struct ProdigalCtCell {
    registers: AtomicSnapshot<Option<u64>>,
}

impl ProdigalCtCell {
    /// `n` = number of token slots (the paper: "cardinality of T is n,
    /// finite but not known" — the object works for any preallocated n).
    pub fn new(n: usize) -> Self {
        ProdigalCtCell {
            registers: AtomicSnapshot::new(n, None),
        }
    }

    /// `consumeToken_h(tkn_m)`: write the block into slot `m`, then return
    /// an atomic read of all slots that includes the last written token.
    pub fn consume_token(&self, m: usize, block: u64) -> Vec<u64> {
        self.registers.update(m, Some(block));
        self.registers.scan().into_iter().flatten().collect()
    }

    /// A plain read of `K[h]` (scan without writing).
    pub fn get(&self) -> Vec<u64> {
        self.registers.scan().into_iter().flatten().collect()
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn consume_includes_own_token() {
        let k = ProdigalCtCell::new(4);
        let seen = k.consume_token(2, 22);
        assert_eq!(seen, vec![22]);
        let seen = k.consume_token(0, 10);
        assert_eq!(seen, vec![10, 22], "slot order");
    }

    #[test]
    fn every_concurrent_consume_succeeds() {
        // The prodigal signature: k = ∞ means *all* consumers get in —
        // contrast with ConsumeTokenCell where exactly one wins.
        for trial in 0..10 {
            let n = 8usize;
            let k = Arc::new(ProdigalCtCell::new(n));
            let views: Vec<Vec<u64>> = std::thread::scope(|s| {
                (0..n)
                    .map(|m| {
                        let k = Arc::clone(&k);
                        s.spawn(move || k.consume_token(m, (m as u64 + 1) * 100))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for (m, view) in views.iter().enumerate() {
                assert!(
                    view.contains(&((m as u64 + 1) * 100)),
                    "trial {trial}: consumer {m} must see its own token in {view:?}"
                );
            }
            assert_eq!(k.get().len(), n, "all tokens consumed");
        }
    }

    #[test]
    fn views_grow_monotonically_for_sequential_consumes() {
        let k = ProdigalCtCell::new(4);
        let mut prev = 0;
        for m in 0..4 {
            let view = k.consume_token(m, m as u64 + 1);
            assert!(view.len() > prev);
            prev = view.len();
        }
    }

    #[test]
    fn get_on_fresh_cell_is_empty() {
        let k = ProdigalCtCell::new(3);
        assert!(k.get().is_empty());
        assert_eq!(k.slots(), 3);
    }
}
