//! Protocol A end to end: consensus *on the shared tree object* (the
//! constructive half of Thm. 4.2, driven through the BT-ADT).
//!
//! [`crate::consensus::OracleConsensus`] proves Θ_F,k=1 ⇒ consensus on a
//! standalone cell: values ride token serials and never touch a tree.
//! [`TreeConsensus`] closes the gap to the paper's object model: `propose`
//! mints a real [`CandidateBlock`] into the shared
//! [`ConcurrentBlockTree`]'s arena under a committed *anchor* block, gates
//! it through the oracle (`getToken(anchor, b)` … `consumeToken`), grafts
//! the winner into the tree membership via
//! [`ConcurrentBlockTree::graft_minted`], and decides the block installed
//! in `K[anchor]` — so Agreement/Validity/Integrity/Termination
//! (Def. 4.1) are established on the same object the recorded-history
//! machinery checks, not on a side cell.
//!
//! # Decide-path ordering invariants
//!
//! * **Graft-before-decide** — no `propose` returns a decision before the
//!   decided block is committed to the tree membership: the winner grafts
//!   its own mint before deciding; every loser waits
//!   ([`ConcurrentBlockTree::wait_committed`]) for the winner's graft
//!   before returning. A read invoked after any decide therefore observes
//!   the decided block (publish-before-respond carries over from the
//!   graft), which is exactly the replay semantics
//!   `btadt_core::linearizability` gives `Decided` events.
//! * **Decide value = K-set winner** — the decision is `K[anchor][0]`, the
//!   single block the k = 1 oracle admitted; the [`CasRegister`] decision
//!   cell is a *publication* of that value (written only after the
//!   commit), never an alternative source of truth.
//! * **One graft per instance** — at most one propose (the one whose mint
//!   the oracle admitted) commits a block; losing mints stay non-member
//!   arena orphans, semantically `P`-rejected blocks. (The dead-winner
//!   rule below may issue *duplicate* grafts of the same winner; those
//!   are no-op re-grafts — `graft_minted` is idempotent — so the tree
//!   still gains exactly one block per instance.)
//!
//! # Dead-winner recovery
//!
//! The oracle decides at `consumeToken`; the tree learns at
//! `graft_minted`. A winner dying between the two used to wedge every
//! loser against the full stall deadline: the decision sat in `K[anchor]`
//! with nobody left obliged to graft it. The paper's object model never
//! required the *winner* to be the grafter — any process may commit a
//! block it knows the oracle admitted (membership is the oracle's call,
//! not the proposer's). So a loser that observes `K[anchor]` consumed but
//! the winner's commit absent past a short grace
//! ([`DEFAULT_GRAFT_GRACE`]) grafts the committed-K winner itself: first
//! graft wins, duplicates are no-ops, and the 20 s stall diagnostic is
//! demoted from "the path a crashed winner puts everyone on" to a true
//! last resort (it still fires when `P` and Θ disagree, or the oracle
//! goes cold with nothing decided).
//!
//! Termination is hardened beyond the paper's pseudo-code: a proposer
//! whose merit tape has gone cold exits the `getToken` loop as soon as a
//! decision is observable — through the published cell or through
//! `SharedOracle::first_consumed` (K[anchor]'s first element *is* the
//! decision under k = 1); decisions are sticky, as in
//! [`CasConsensus`](crate::consensus::CasConsensus). A genuinely wedged
//! run — zero-rate oracle and no decision — panics with a diagnostic
//! after [`DECIDE_STALL_LIMIT`] instead of hanging CI.

use crate::cas::{CasRegister, EMPTY};
use btadt_core::blocktree::CandidateBlock;
use btadt_core::concurrent::ConcurrentBlockTree;
use btadt_core::ids::BlockId;
use btadt_core::selection::SelectionFn;
use btadt_core::validity::ValidityPredicate;
use btadt_core::wal::DurabilityError;
use btadt_oracle::{KBound, SharedOracle};
use std::time::{Duration, Instant};

/// Default wedge deadline for [`TreeConsensus::propose`] — matches the
/// frugal-gate and [`crate::consensus::PROPOSE_STALL_LIMIT`] deadlines.
pub const DECIDE_STALL_LIMIT: Duration = Duration::from_secs(20);

/// Default grace a process waits on the winner's own graft before
/// grafting the committed-K winner itself (the dead-winner recovery
/// rule). Long enough that a *live* winner scheduled normally grafts
/// first and the duplicate-graft path stays cold; short enough that a
/// crashed winner delays its losers by milliseconds, not the full
/// [`DECIDE_STALL_LIMIT`]. Benign either way — an early duplicate graft
/// is a no-op.
pub const DEFAULT_GRAFT_GRACE: Duration = Duration::from_millis(10);

/// What one `propose` call did, beyond the decision itself — the raw
/// material of a Def. 4.1 report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProposeOutcome {
    /// The decided block: the (committed) content of `K[anchor]`.
    pub decided: BlockId,
    /// The id this call minted into the arena, if it reached its mint
    /// (`None` when the published decision short-circuited the token
    /// loop). A losing mint stays a non-member orphan.
    pub minted: Option<BlockId>,
    /// Whether *this* call's mint was admitted into `K[anchor]` — i.e.
    /// this propose grafted the decided block. True for at most one call
    /// per instance.
    pub grafted: bool,
}

/// A single-shot consensus instance over a shared tree + Θ_F,k=1 oracle
/// pair, anchored at a committed block.
///
/// Instances are cheap (one CAS cell plus borrows); successive instances
/// over the *same* oracle are isolated by their anchors — `K[h]` is
/// per-object — which is how a chain of decisions is built (each round
/// anchored at the previous decision).
pub struct TreeConsensus<'t, F: SelectionFn, P: ValidityPredicate> {
    tree: &'t ConcurrentBlockTree<F, P>,
    oracle: &'t SharedOracle,
    anchor: BlockId,
    /// Published decision (block id + 1; `EMPTY` = undecided). Written
    /// only after the decided block is committed, so a non-EMPTY read
    /// implies the graft happened.
    decided: CasRegister,
    stall_limit: Duration,
    /// How long to wait on the winner's own graft before self-grafting
    /// the committed-K winner (dead-winner recovery).
    graft_grace: Duration,
}

impl<'t, F: SelectionFn, P: ValidityPredicate> TreeConsensus<'t, F, P> {
    /// A consensus instance on `tree` anchored at `anchor`.
    ///
    /// Panics if the oracle is not Θ_F,k=1 (Agreement needs the singleton
    /// `K`-set) or if `anchor` is not a committed member of `tree` (the
    /// winner must be graftable under it).
    pub fn new(
        tree: &'t ConcurrentBlockTree<F, P>,
        oracle: &'t SharedOracle,
        anchor: BlockId,
    ) -> Self {
        Self::with_stall_limit(tree, oracle, anchor, DECIDE_STALL_LIMIT)
    }

    /// [`new`](Self::new) with an explicit wedge deadline (tests of the
    /// stall diagnostics want a short one).
    pub fn with_stall_limit(
        tree: &'t ConcurrentBlockTree<F, P>,
        oracle: &'t SharedOracle,
        anchor: BlockId,
        stall_limit: Duration,
    ) -> Self {
        assert_eq!(
            oracle.k(),
            KBound::Finite(1),
            "Protocol A requires the frugal oracle with k = 1"
        );
        assert!(
            tree.is_committed(anchor),
            "consensus anchor {anchor} is not a committed member of the tree"
        );
        TreeConsensus {
            tree,
            oracle,
            anchor,
            decided: CasRegister::new(EMPTY),
            stall_limit,
            graft_grace: DEFAULT_GRAFT_GRACE,
        }
    }

    /// Overrides the dead-winner graft grace (tests use extremes: zero to
    /// force the recovery path, long to prove the winner normally wins).
    pub fn with_graft_grace(mut self, grace: Duration) -> Self {
        self.graft_grace = grace;
        self
    }

    /// The anchor object `b0` of this instance.
    pub fn anchor(&self) -> BlockId {
        self.anchor
    }

    /// The published decision, if any (always a committed block).
    pub fn decided(&self) -> Option<BlockId> {
        match self.decided.read() {
            EMPTY => None,
            v => Some(BlockId((v - 1) as u32)),
        }
    }

    /// Protocol A against the tree: getToken for the anchor until granted,
    /// mint `candidate` under the anchor into the arena, consumeToken, and
    /// decide `K[anchor]`'s singleton — grafting it first when it is our
    /// own mint, waiting for the winner's graft otherwise.
    ///
    /// A winner dying between `consumeToken` and its graft does **not**
    /// wedge this call: past a short grace the loser grafts the
    /// committed-K winner itself (see the module's dead-winner recovery
    /// section).
    ///
    /// On a durable tree that has degraded after a persistence failure
    /// (see [`ConcurrentBlockTree::is_poisoned`]) the decide path
    /// propagates the [`DurabilityError`] instead of deciding a value
    /// the tree could not durably commit. Volatile trees never return
    /// `Err`.
    ///
    /// # Panics
    ///
    /// * after [`stall_limit`](Self::with_stall_limit) when the oracle
    ///   stops granting tokens and no decision is published (Termination
    ///   needs a live oracle);
    /// * when `P` rejects an oracle-admitted block — the oracle is "the
    ///   only generator of valid blocks", so the pair is misconfigured.
    pub fn propose(
        &self,
        who: usize,
        candidate: CandidateBlock,
    ) -> Result<ProposeOutcome, DurabilityError> {
        let deadline = Instant::now() + self.stall_limit;
        // Backoff ladder for a token-less proposer: the first few denials
        // just yield (a solo proposer's tape is its only wake source —
        // parking there would add hard latency to every denied attempt),
        // then park on the commit generation. Within one instance the
        // only tree commit is the winner's graft, so a generation advance
        // almost always means "the decision landed" — a park usually ends
        // in a wakeup, and the timeout keeps tape attempts flowing when
        // no other proposer is making progress (every proposer parked at
        // once is possible when every tape said ⊥ in the same breath).
        const TOKEN_YIELDS: u32 = 4;
        const TOKEN_BACKOFF: Duration = Duration::from_micros(200);
        let mut denied = 0u32;
        // while validBlock = ⊥: validBlock ← getToken(b0, b)
        let grant = loop {
            // Generation before the polls: a decision committing after
            // them bumps it, so the park at the bottom returns instantly
            // instead of sleeping through the wakeup.
            let gen = self.tree.commit_generation();
            // The decide-path poll: the published cell (already
            // committed), or K[anchor]'s first consume (decided but
            // perhaps not yet grafted — wait for that). Either way, adopt
            // the decision instead of spinning on getToken: keeps
            // Termination independent of this caller's remaining tape —
            // the paper's loop would spin on a cold tape even though
            // K[b0] is already full.
            if let Some(d) = self
                .decided()
                .or_else(|| self.oracle.first_consumed(self.anchor))
            {
                self.adopt_committed(d)?;
                self.decided.compare_and_swap(EMPTY, d.0 as u64 + 1);
                return Ok(ProposeOutcome {
                    decided: d,
                    minted: None,
                    grafted: false,
                });
            }
            if let Some(g) = self.oracle.get_token(who, self.anchor) {
                break g;
            }
            assert!(
                Instant::now() < deadline,
                "TreeConsensus::propose wedged: p{who} got no token for \
                 anchor {} within {:?} and no decision was published — \
                 zero-rate oracle or exhausted merit tape",
                self.anchor,
                self.stall_limit
            );
            // No token, no decision: yield first, then park on the
            // commit generation instead of `yield_now`-spinning — a pack
            // of spinning losers time-slices the winner off the core
            // exactly when it needs to run (the contended-decide collapse
            // this replaced).
            denied += 1;
            if denied <= TOKEN_YIELDS {
                std::thread::yield_now();
            } else {
                self.tree
                    .wait_commit_past(gen, Instant::now() + TOKEN_BACKOFF);
            }
        };
        // The proposal becomes a real block: minted into the shared arena
        // under the anchor (not yet a member — membership is the oracle's
        // call, the refined append of Def. 3.7).
        let minted = self.tree.store().mint(
            self.anchor,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        // validBlockSet ← consumeToken(validBlock)
        let set = self.oracle.consume_token(&grant, minted);
        let winner = crate::consensus::k1_winner(self.anchor, &set);
        let grafted = winner == minted;
        if grafted {
            // Our mint is K[anchor]'s singleton: graft-before-decide — the
            // block must be a committed member before anyone (us included)
            // returns it as the decision.
            let committed = self.tree.graft_minted(minted)?.unwrap_or_else(|| {
                panic!(
                    "validity predicate rejected oracle-admitted block \
                     {minted}: the oracle must be the only generator of \
                     valid blocks (Def. 3.5), so P and Θ disagree"
                )
            });
            debug_assert_eq!(committed, minted);
        } else {
            // Someone else's mint won. Its owner normally grafts it; wait
            // briefly for that, then graft it ourselves if it never comes
            // (graft-before-decide, loser half + dead-winner recovery).
            self.adopt_committed(winner)?;
        }
        // Publish the (committed) decision for late proposers.
        self.decided.compare_and_swap(EMPTY, winner.0 as u64 + 1);
        Ok(ProposeOutcome {
            decided: winner,
            minted: Some(minted),
            grafted,
        })
    }

    /// Ensures the K-set winner `d` is a committed tree member before the
    /// caller decides it (graft-before-decide).
    ///
    /// Waits [`graft_grace`](Self::with_graft_grace) for the winner's own
    /// graft; past the grace, the dead-winner recovery rule applies — `d`
    /// is in `K[anchor]`, so *any* process may graft it, and we do. The
    /// graft is idempotent (a racing re-graft is a no-op returning the
    /// id), so this is safe even when the winner is merely slow rather
    /// than dead. The only ways out without a committed `d` are the
    /// `P`/Θ misconfiguration panic and the degraded-mode `Err` (the
    /// tree can no longer durably commit anything) — a crashed winner no
    /// longer wedges anyone.
    fn adopt_committed(&self, d: BlockId) -> Result<(), DurabilityError> {
        let grace = Instant::now() + self.graft_grace;
        if self.tree.wait_committed(d, grace) {
            return Ok(());
        }
        // Grace expired with the winner's graft absent — its proposer
        // likely died between consumeToken and graft_minted. Graft the
        // committed-K winner ourselves (first graft wins; a duplicate is
        // a no-op re-graft either way).
        assert!(
            self.tree.graft_minted(d)?.is_some(),
            "validity predicate rejected oracle-admitted block {d}: the \
             oracle must be the only generator of valid blocks (Def. 3.5), \
             so P and Θ disagree"
        );
        Ok(())
    }

    /// Crash-injection hook for the recovery tests: runs Protocol A up to
    /// and *including* `consumeToken`, then stops dead — no graft, no
    /// decide, no published cell — exactly as a proposer crashing between
    /// `consumeToken` and `graft_minted` would. Returns `(winner, minted)`
    /// as observed at the consume. When they are equal, the instance is
    /// now in the dead-winner state: `K[anchor]` holds a block that is
    /// still a non-member arena orphan, and survivors must recover via
    /// [`adopt_committed`](Self::with_graft_grace)'s self-graft rule.
    ///
    /// Panics after the stall limit if the oracle never grants the token
    /// (the hook must actually reach the consume to simulate the crash).
    pub fn propose_then_crash_before_graft(
        &self,
        who: usize,
        candidate: CandidateBlock,
    ) -> (BlockId, BlockId) {
        let deadline = Instant::now() + self.stall_limit;
        let grant = loop {
            if let Some(g) = self.oracle.get_token(who, self.anchor) {
                break g;
            }
            assert!(
                Instant::now() < deadline,
                "crash-injection proposer p{who} never got a token for \
                 anchor {}",
                self.anchor
            );
            std::thread::yield_now();
        };
        let minted = self.tree.store().mint(
            self.anchor,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        let set = self.oracle.consume_token(&grant, minted);
        let winner = crate::consensus::k1_winner(self.anchor, &set);
        // …and here the process dies: no graft_minted, no decided-cell
        // publication, no status for anyone.
        (winner, minted)
    }
}

/// One consensus instance's Def. 4.1 evidence: every proposer's outcome,
/// in proposer order.
#[derive(Clone, Debug)]
pub struct TreeConsensusReport {
    /// The anchor the instance ran on.
    pub anchor: BlockId,
    /// Decision of each proposer.
    pub decisions: Vec<BlockId>,
    /// Block each proposer actually minted (`None` = short-circuited).
    pub minted: Vec<Option<BlockId>>,
    /// Which proposer grafted the winner (at most one true).
    pub grafted: Vec<bool>,
}

impl TreeConsensusReport {
    /// Assembles a report from per-proposer outcomes.
    pub fn from_outcomes(anchor: BlockId, outcomes: &[ProposeOutcome]) -> Self {
        TreeConsensusReport {
            anchor,
            decisions: outcomes.iter().map(|o| o.decided).collect(),
            minted: outcomes.iter().map(|o| o.minted).collect(),
            grafted: outcomes.iter().map(|o| o.grafted).collect(),
        }
    }

    /// Agreement: all deciding processes decide the same block.
    pub fn agreement(&self) -> bool {
        self.decisions.windows(2).all(|w| w[0] == w[1])
    }

    /// Validity: the decided block was proposed — minted under the anchor
    /// by some proposer of this instance (and committed, hence `P`-valid;
    /// membership is checked against the tree by the callers).
    pub fn validity(&self) -> bool {
        self.decisions
            .iter()
            .all(|d| self.minted.contains(&Some(*d)))
    }

    /// Termination: every proposer decided (one outcome per proposer; the
    /// report existing with full vectors encodes it).
    pub fn termination(&self) -> bool {
        !self.decisions.is_empty()
            && self.decisions.len() == self.minted.len()
            && self.decisions.len() == self.grafted.len()
    }

    /// Integrity, object half: at most one propose committed a block (no
    /// process decides twice is structural — one outcome per call).
    pub fn integrity(&self) -> bool {
        self.grafted.iter().filter(|&&g| g).count() <= 1
    }

    /// The agreed decision (when agreement holds).
    pub fn decided(&self) -> Option<BlockId> {
        if self.agreement() {
            self.decisions.first().copied()
        } else {
            None
        }
    }
}

/// Runs one instance with `n` real proposer threads (proposer `i` offers
/// `CandidateBlock::simple(ProcessId(i), nonce_base + i)`) and reports.
pub fn run_tree_trial<F: SelectionFn, P: ValidityPredicate>(
    consensus: &TreeConsensus<'_, F, P>,
    n: usize,
    nonce_base: u64,
) -> TreeConsensusReport {
    use btadt_core::ids::ProcessId;
    let outcomes: Vec<ProposeOutcome> = std::thread::scope(|s| {
        (0..n)
            .map(|who| {
                s.spawn(move || {
                    let cand =
                        CandidateBlock::simple(ProcessId(who as u32), nonce_base + who as u64);
                    consensus
                        .propose(who, cand)
                        .expect("trial tree degraded mid-propose")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("proposer must not panic"))
            .collect()
    });
    TreeConsensusReport::from_outcomes(consensus.anchor(), &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::ids::ProcessId;
    use btadt_core::selection::LongestChain;
    use btadt_core::store::BlockView;
    use btadt_core::validity::{AcceptAll, DigestPrefix};
    use btadt_oracle::{Merits, ThetaOracle};

    fn shared_oracle(n: usize, seed: u64) -> SharedOracle {
        SharedOracle::new(ThetaOracle::frugal(
            1,
            Merits::uniform(n),
            n as f64 * 0.8,
            seed,
        ))
    }

    #[test]
    fn single_proposer_decides_own_block_and_commits_it() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = shared_oracle(1, 1);
        let c = TreeConsensus::new(&tree, &oracle, BlockId::GENESIS);
        let out = c
            .propose(0, CandidateBlock::simple(ProcessId(0), 7))
            .expect("volatile trees cannot poison");
        assert_eq!(out.minted, Some(out.decided));
        assert!(out.grafted);
        assert!(tree.is_committed(out.decided), "graft-before-decide");
        assert_eq!(tree.read().tip(), out.decided);
        assert_eq!(c.decided(), Some(out.decided));
        assert_eq!(oracle.first_consumed(BlockId::GENESIS), Some(out.decided));
    }

    #[test]
    fn threaded_trials_satisfy_def_4_1_across_seeds() {
        for seed in 0..12u64 {
            let n = 4;
            let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
            let oracle = shared_oracle(n, seed);
            let c = TreeConsensus::new(&tree, &oracle, BlockId::GENESIS);
            let report = run_tree_trial(&c, n, 100);
            assert!(report.termination(), "seed {seed}");
            assert!(report.agreement(), "seed {seed}: {:?}", report.decisions);
            assert!(report.validity(), "seed {seed}: {:?}", report.decisions);
            assert!(report.integrity(), "seed {seed}: {:?}", report.grafted);
            let d = report.decided().expect("agreement holds");
            assert!(tree.is_committed(d), "seed {seed}: decided ∈ membership");
            assert!(oracle.fork_coherent(), "seed {seed}");
            // k = 1 on one instance: the tree grew by exactly the winner.
            assert_eq!(tree.len(), 2, "seed {seed}");
        }
    }

    #[test]
    fn chained_instances_build_the_decided_path() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = shared_oracle(3, 9);
        let mut anchor = BlockId::GENESIS;
        let mut decisions = Vec::new();
        for round in 0..5u64 {
            let c = TreeConsensus::new(&tree, &oracle, anchor);
            let report = run_tree_trial(&c, 3, round * 10);
            let d = report.decided().expect("agreement");
            assert_eq!(tree.store().parent(d), Some(anchor), "decisions chain");
            decisions.push(d);
            anchor = d;
        }
        // Membership is exactly the decided path.
        let chain = tree.read_owned();
        assert_eq!(chain.len(), 6);
        assert_eq!(&chain.ids()[1..], decisions.as_slice());
        assert!(oracle.fork_coherent());
    }

    #[test]
    fn late_proposer_adopts_the_published_decision() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = shared_oracle(2, 4);
        let c = TreeConsensus::new(&tree, &oracle, BlockId::GENESIS);
        let first = c
            .propose(0, CandidateBlock::simple(ProcessId(0), 1))
            .expect("volatile trees cannot poison");
        let late = c
            .propose(1, CandidateBlock::simple(ProcessId(1), 2))
            .expect("volatile trees cannot poison");
        assert_eq!(late.decided, first.decided, "decisions are sticky");
        assert!(!late.grafted);
        assert_eq!(late.minted, None, "published decision short-circuits");
    }

    #[test]
    #[should_panic(expected = "k = 1")]
    fn rejects_non_k1_oracles() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = SharedOracle::new(ThetaOracle::frugal(2, Merits::uniform(2), 2.0, 0));
        let _ = TreeConsensus::new(&tree, &oracle, BlockId::GENESIS);
    }

    #[test]
    #[should_panic(expected = "not a committed member")]
    fn rejects_uncommitted_anchors() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = shared_oracle(1, 0);
        // Minted but never grafted: an arena orphan is no anchor.
        let orphan = tree
            .store()
            .mint(BlockId::GENESIS, ProcessId(0), 0, 1, 5, Default::default());
        let _ = TreeConsensus::new(&tree, &oracle, orphan);
    }

    #[test]
    #[should_panic(expected = "wedged")]
    fn zero_rate_oracle_panics_instead_of_hanging() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = SharedOracle::new(ThetaOracle::frugal(1, Merits::uniform(1), 0.0, 0));
        let c = TreeConsensus::with_stall_limit(
            &tree,
            &oracle,
            BlockId::GENESIS,
            Duration::from_millis(50),
        );
        let _ = c.propose(0, CandidateBlock::simple(ProcessId(0), 1));
    }

    #[test]
    fn dead_winner_is_grafted_by_survivors_within_grace() {
        // The regression the recovery rule exists for: the winning
        // proposer dies between consumeToken and graft_minted. Before
        // the rule, every survivor wedged against the full stall limit;
        // now they self-graft the committed-K winner after a ~10 ms
        // grace and decide well under the deadline.
        for seed in 0..8u64 {
            let n = 4;
            let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
            let oracle = shared_oracle(n, seed);
            let c = TreeConsensus::with_stall_limit(
                &tree,
                &oracle,
                BlockId::GENESIS,
                Duration::from_secs(10),
            );
            // Proposer 0 runs alone first, so the oracle's K-set winner
            // is its mint — then it "crashes" without grafting.
            let (winner, minted) =
                c.propose_then_crash_before_graft(0, CandidateBlock::simple(ProcessId(0), 1));
            assert_eq!(winner, minted, "a solo consume wins its own K-set");
            assert!(
                !tree.is_committed(winner),
                "the dead winner never grafted: K holds an arena orphan"
            );
            // Survivors decide concurrently. None of them minted the
            // winner; all must adopt it via the self-graft rule.
            let t0 = Instant::now();
            let c = &c;
            let mut outcomes: Vec<ProposeOutcome> = std::thread::scope(|s| {
                (1..n)
                    .map(|who| {
                        s.spawn(move || {
                            c.propose(who, CandidateBlock::simple(ProcessId(who as u32), 10))
                                .expect("volatile trees cannot poison")
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("survivors must not panic"))
                    .collect()
            });
            let elapsed = t0.elapsed();
            assert!(
                elapsed < Duration::from_secs(5),
                "seed {seed}: survivors decided in {elapsed:?}, not at the \
                 stall deadline"
            );
            for out in &outcomes {
                assert_eq!(out.decided, winner, "seed {seed}: Agreement");
                assert!(!out.grafted, "seed {seed}: nobody's own mint won");
            }
            assert!(tree.is_committed(winner), "seed {seed}: recovered graft");
            assert_eq!(tree.len(), 2, "seed {seed}: duplicate grafts no-op");
            // Def. 4.1 on the survivors' report, with the crasher's mint
            // recorded as a synthetic outcome (it proposed and its block
            // was decided; it just never returned).
            outcomes.push(ProposeOutcome {
                decided: winner,
                minted: Some(minted),
                grafted: false,
            });
            let report = TreeConsensusReport::from_outcomes(BlockId::GENESIS, &outcomes);
            assert!(report.termination(), "seed {seed}");
            assert!(report.agreement(), "seed {seed}: {:?}", report.decisions);
            assert!(report.validity(), "seed {seed}: {:?}", report.decisions);
            assert!(report.integrity(), "seed {seed}: {:?}", report.grafted);
        }
    }

    #[test]
    fn duplicate_grafts_of_the_winner_are_noop_regrafts() {
        let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let oracle = shared_oracle(2, 5);
        // Zero grace: every loser takes the self-graft path immediately,
        // racing the (alive) winner's own graft — idempotency is what
        // keeps the tree at exactly one new block.
        let c =
            TreeConsensus::new(&tree, &oracle, BlockId::GENESIS).with_graft_grace(Duration::ZERO);
        let report = run_tree_trial(&c, 2, 50);
        assert!(report.agreement() && report.validity() && report.integrity());
        let d = report.decided().expect("agreement holds");
        assert!(tree.is_committed(d));
        assert_eq!(tree.len(), 2, "re-grafts inserted nothing");
        // And an explicit duplicate graft on the tree is a visible no-op.
        let log_before = tree.commit_log();
        assert_eq!(tree.graft_minted(d), Ok(Some(d)));
        assert_eq!(tree.commit_log(), log_before);
    }

    #[test]
    #[should_panic(expected = "validity predicate rejected")]
    fn p_rejecting_an_admitted_block_is_a_loud_misconfiguration() {
        // A P that rejects everything cannot be paired with an oracle that
        // admits something: the winner's graft would silently fail and
        // every decide would dangle.
        let tree = ConcurrentBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        let oracle = shared_oracle(1, 3);
        let c = TreeConsensus::new(&tree, &oracle, BlockId::GENESIS);
        let _ = c.propose(0, CandidateBlock::simple(ProcessId(0), 1));
    }
}
