//! Atomic registers — the base objects of the concurrent model of §4.1
//! ("processes can communicate through atomic registers").
//!
//! [`WordRegister`] is a genuinely lock-free MRMW atomic register for
//! word-sized payloads (an `AtomicU64`). [`WideRegister`] holds arbitrary
//! `Clone` payloads behind a `parking_lot` lock; each read/write is atomic,
//! which is all the formal model requires of a register — the lock stands
//! in for the hardware's single-word atomicity when payloads don't fit a
//! word. Both are `Sync` and freely shareable.
//!
//! All word-register operations use `SeqCst`: these objects exist to
//! *demonstrate* linearizable behaviour in tests and experiment harnesses,
//! so we buy the strongest ordering and document it rather than shaving
//! cycles with Acquire/Release reasoning (contention in the experiments is
//! tiny; see "Rust Atomics and Locks" ch. 3 on when SeqCst is the honest
//! default for specification-level code).

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A multi-reader multi-writer atomic register over `u64`.
#[derive(Debug, Default)]
pub struct WordRegister {
    cell: AtomicU64,
}

impl WordRegister {
    pub fn new(initial: u64) -> Self {
        WordRegister {
            cell: AtomicU64::new(initial),
        }
    }

    /// Atomic read.
    #[inline]
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomic write.
    #[inline]
    pub fn write(&self, value: u64) {
        self.cell.store(value, Ordering::SeqCst);
    }

    /// Underlying atomic, for objects built on top (CAS, CT cell).
    #[inline]
    pub(crate) fn atomic(&self) -> &AtomicU64 {
        &self.cell
    }
}

/// An atomic register for arbitrary `Clone` payloads (lock-backed; each
/// operation is atomic, which is the model-level register contract).
#[derive(Debug)]
pub struct WideRegister<T: Clone> {
    cell: RwLock<T>,
}

impl<T: Clone> WideRegister<T> {
    pub fn new(initial: T) -> Self {
        WideRegister {
            cell: RwLock::new(initial),
        }
    }

    /// Atomic read (clones out).
    pub fn read(&self) -> T {
        self.cell.read().clone()
    }

    /// Atomic write.
    pub fn write(&self, value: T) {
        *self.cell.write() = value;
    }

    /// Atomic read-modify-write (used by snapshot cells, which must write
    /// value+seq+view as one unit).
    pub fn modify<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.cell.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn word_register_basics() {
        let r = WordRegister::new(7);
        assert_eq!(r.read(), 7);
        r.write(42);
        assert_eq!(r.read(), 42);
    }

    #[test]
    fn word_register_concurrent_writes_settle_on_one() {
        let r = Arc::new(WordRegister::new(0));
        std::thread::scope(|s| {
            for v in 1..=8u64 {
                let r = Arc::clone(&r);
                s.spawn(move || r.write(v));
            }
        });
        let v = r.read();
        assert!(
            (1..=8).contains(&v),
            "final value from some writer, got {v}"
        );
    }

    #[test]
    fn wide_register_holds_structures() {
        let r = WideRegister::new(vec![1, 2, 3]);
        assert_eq!(r.read(), vec![1, 2, 3]);
        r.write(vec![9]);
        assert_eq!(r.read(), vec![9]);
        let popped = r.modify(|v| v.pop());
        assert_eq!(popped, Some(9));
        assert!(r.read().is_empty());
    }

    #[test]
    fn wide_register_concurrent_readers() {
        let r = Arc::new(WideRegister::new(String::from("init")));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..100 {
                        let v = r.read();
                        assert!(v == "init" || v == "done");
                    }
                });
            }
            let r2 = Arc::clone(&r);
            s.spawn(move || r2.write(String::from("done")));
        });
        assert_eq!(r.read(), "done");
    }
}
