//! Wait-free Atomic Snapshot (Aspnes & Herlihy [7]; the classic
//! single-writer construction of Afek et al.).
//!
//! An atomic snapshot object holds `n` single-writer components and offers:
//!
//! * `update(i, v)` — writer `i` sets its component to `v`;
//! * `scan()` — any process obtains an atomic view of all components.
//!
//! The algorithm: every component register holds `(value, seq, view)`.
//!
//! * `scan`: repeated *double collect* — two identical consecutive collects
//!   (same `seq` everywhere) form a clean atomic view. If some component
//!   is observed to move **twice** while we retry, its writer completed an
//!   entire `update` within our scan, and the `view` it embedded (the scan
//!   it performed inside that update) is a valid snapshot taken inside our
//!   interval — we *borrow* it and return it.
//! * `update(i, v)`: perform a `scan()`, then write `(v, seq+1, view)`.
//!
//! Wait-freedom: after `n+1` retries some component must have moved twice
//! (pigeonhole), so a scan terminates in O(n²) register operations.
//!
//! Used by Fig. 12 to implement the prodigal oracle's `consumeToken`
//! (Thm. 4.3: Θ_P has consensus number 1, since Atomic Snapshot is
//! implementable from plain registers [7]).

use crate::register::WideRegister;

#[derive(Clone, Debug)]
struct Component<T: Clone> {
    value: T,
    seq: u64,
    /// The view (values + seq vector) embedded by the writer's own
    /// scan-inside-update (empty before the first update). Carrying the
    /// seq vector keeps borrowed views atomically stamped, so scans are
    /// pointwise-comparable even on the borrow path.
    view: Option<(Vec<T>, Vec<u64>)>,
}

/// A wait-free `n`-component single-writer atomic snapshot object.
pub struct AtomicSnapshot<T: Clone> {
    components: Vec<WideRegister<Component<T>>>,
}

impl<T: Clone> AtomicSnapshot<T> {
    /// Creates the object with every component set to `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        assert!(n > 0, "need at least one component");
        AtomicSnapshot {
            components: (0..n)
                .map(|_| {
                    WideRegister::new(Component {
                        value: initial.clone(),
                        seq: 0,
                        view: None,
                    })
                })
                .collect(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    fn collect(&self) -> Vec<Component<T>> {
        self.components.iter().map(|r| r.read()).collect()
    }

    /// `scan()` — an atomic view of all components.
    pub fn scan(&self) -> Vec<T> {
        self.scan_with_seqs().0
    }

    /// Scan returning the per-component sequence numbers alongside the
    /// values (the seq vector makes linearizability *testable*: any two
    /// scans must be pointwise comparable).
    pub fn scan_with_seqs(&self) -> (Vec<T>, Vec<u64>) {
        let n = self.components.len();
        let baseline = self.collect();
        let mut moved = vec![0u32; n];
        let mut prev = baseline;
        loop {
            let cur = self.collect();
            if (0..n).all(|i| prev[i].seq == cur[i].seq) {
                // Clean double collect.
                let seqs = cur.iter().map(|c| c.seq).collect();
                let values = cur.into_iter().map(|c| c.value).collect();
                return (values, seqs);
            }
            for i in 0..n {
                if prev[i].seq != cur[i].seq {
                    moved[i] += 1;
                    if moved[i] >= 2 {
                        // Writer i completed a full update inside our scan:
                        // its embedded view was taken within our interval
                        // and is atomically stamped — borrow it wholesale.
                        let (view, seqs) = cur[i]
                            .view
                            .clone()
                            .expect("moved-twice component has a view");
                        return (view, seqs);
                    }
                }
            }
            prev = cur;
        }
    }

    /// `update(i, v)` — writer `i` publishes `v` (embedding a fresh scan,
    /// per the algorithm).
    pub fn update(&self, i: usize, value: T) {
        let view = self.scan_with_seqs();
        self.components[i].modify(|c| {
            c.value = value;
            c.seq += 1;
            c.view = Some(view);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn initial_scan_is_all_initial() {
        let s: AtomicSnapshot<u64> = AtomicSnapshot::new(4, 0);
        assert_eq!(s.scan(), vec![0, 0, 0, 0]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn update_then_scan_sequential() {
        let s = AtomicSnapshot::new(3, 0u64);
        s.update(1, 11);
        s.update(2, 22);
        assert_eq!(s.scan(), vec![0, 11, 22]);
        s.update(1, 111);
        assert_eq!(s.scan(), vec![0, 111, 22]);
    }

    #[test]
    fn concurrent_scans_are_pointwise_comparable() {
        // Linearizability witness: for any two scans s1, s2 the seq
        // vectors must satisfy s1 ≤ s2 or s2 ≤ s1 pointwise.
        for trial in 0..5 {
            let s = Arc::new(AtomicSnapshot::new(4, 0u64));
            let all_seqs: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                // 4 writers…
                for w in 0..4usize {
                    let s = Arc::clone(&s);
                    handles.push(scope.spawn(move || {
                        for round in 1..=50u64 {
                            s.update(w, round * 10 + w as u64);
                        }
                        Vec::new()
                    }));
                }
                // …and 3 scanners.
                for _ in 0..3 {
                    let s = Arc::clone(&s);
                    handles.push(scope.spawn(move || {
                        let mut seqs = Vec::new();
                        for _ in 0..100 {
                            seqs.push(s.scan_with_seqs().1);
                        }
                        seqs
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            for (i, a) in all_seqs.iter().enumerate() {
                for b in all_seqs.iter().skip(i + 1) {
                    let a_le_b = a.iter().zip(b).all(|(x, y)| x <= y);
                    let b_le_a = a.iter().zip(b).all(|(x, y)| y <= x);
                    assert!(
                        a_le_b || b_le_a,
                        "trial {trial}: incomparable scans {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scans_never_observe_torn_values() {
        // Writer always writes value == 100*seq; a scan must never see a
        // value/seq mismatch within a component.
        let s = Arc::new(AtomicSnapshot::new(2, 0u64));
        std::thread::scope(|scope| {
            let sw = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 1..=200u64 {
                    let (_, seqs) = sw.scan_with_seqs();
                    sw.update(0, (seqs[0] + 1) * 100);
                }
            });
            let ss = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..200 {
                    let (vals, seqs) = ss.scan_with_seqs();
                    // Component 0 invariant: value = 100 * seq.
                    assert_eq!(vals[0], seqs[0] * 100, "torn read");
                }
            });
        });
    }

    #[test]
    fn borrowed_views_are_plausible_snapshots() {
        // Hammer updates from all components and scan concurrently; every
        // scan of length n is returned (either clean or borrowed) — this
        // exercises the moved-twice path. Values are monotone per
        // component, so any returned view must be monotone-consistent.
        let n = 3;
        let s = Arc::new(AtomicSnapshot::new(n, 0u64));
        let views: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..n {
                let s = Arc::clone(&s);
                handles.push(scope.spawn(move || {
                    for round in 1..=100u64 {
                        s.update(w, round);
                    }
                    Vec::new()
                }));
            }
            let s2 = Arc::clone(&s);
            handles.push(scope.spawn(move || (0..200).map(|_| s2.scan()).collect()));
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for v in views {
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x <= 100));
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = AtomicSnapshot::<u64>::new(0, 0);
    }
}
