//! # btadt-registers — shared-memory substrate for §4.1
//!
//! The concurrent model of §4.1: `n` processes (threads), up to `f`
//! crash-prone, communicating through atomic registers. This crate builds
//! every object the implementability results manipulate and validates the
//! paper's two consensus-number theorems with real threads:
//!
//! | Paper | Module |
//! |---|---|
//! | atomic registers (base objects) | [`register`] |
//! | Fig. 9 — `Compare&Swap` and `consumeToken` (k = 1) | [`cas`] |
//! | Fig. 10 / Thm. 4.1 — CAS from CT | [`reduction`] |
//! | Fig. 11 / Thm. 4.2 — Protocol A: consensus from Θ_F,k=1 | [`consensus`] |
//! | Protocol A *on the shared tree* (Thm. 4.2 end to end) | [`tree_consensus`] |
//! | Atomic Snapshot (Aspnes–Herlihy [7]) | [`snapshot`] |
//! | Fig. 12 / Thm. 4.3 — prodigal CT from snapshot | [`snapshot_ct`] |
//! | Θ_P agreement-violating schedules (illustration) | [`adversary`] |
//!
//! [`tree_consensus::TreeConsensus`] is the Protocol-A decide path run
//! against the `ConcurrentBlockTree` + `SharedOracle` pair itself: propose
//! mints a candidate under a committed anchor, the oracle's `K[anchor]`
//! singleton picks the winner, the winner is grafted *before* anyone
//! decides it (graft-before-decide), and every proposer decides that
//! committed block. `btadt_sim::mtrun::run_consensus_workload` records
//! such runs as timestamped histories for the linearizability checkers.

pub mod adversary;
pub mod cas;
pub mod consensus;
pub mod reduction;
pub mod register;
pub mod snapshot;
pub mod snapshot_ct;
pub mod tree_consensus;

pub use cas::{CasRegister, ConsumeTokenCell, EMPTY};
pub use consensus::{run_trial, CasConsensus, Consensus, ConsensusReport, OracleConsensus};
pub use reduction::CasFromCt;
pub use register::{WideRegister, WordRegister};
pub use snapshot::AtomicSnapshot;
pub use snapshot_ct::ProdigalCtCell;
pub use tree_consensus::{run_tree_trial, ProposeOutcome, TreeConsensus, TreeConsensusReport};
