//! # btadt-registers — shared-memory substrate for §4.1
//!
//! The concurrent model of §4.1: `n` processes (threads), up to `f`
//! crash-prone, communicating through atomic registers. This crate builds
//! every object the implementability results manipulate and validates the
//! paper's two consensus-number theorems with real threads:
//!
//! | Paper | Module |
//! |---|---|
//! | atomic registers (base objects) | [`register`] |
//! | Fig. 9 — `Compare&Swap` and `consumeToken` (k = 1) | [`cas`] |
//! | Fig. 10 / Thm. 4.1 — CAS from CT | [`reduction`] |
//! | Fig. 11 / Thm. 4.2 — Protocol A: consensus from Θ_F,k=1 | [`consensus`] |
//! | Atomic Snapshot (Aspnes–Herlihy [7]) | [`snapshot`] |
//! | Fig. 12 / Thm. 4.3 — prodigal CT from snapshot | [`snapshot_ct`] |
//! | Θ_P agreement-violating schedules (illustration) | [`adversary`] |

pub mod adversary;
pub mod cas;
pub mod consensus;
pub mod reduction;
pub mod register;
pub mod snapshot;
pub mod snapshot_ct;

pub use cas::{CasRegister, ConsumeTokenCell, EMPTY};
pub use consensus::{run_trial, CasConsensus, Consensus, ConsensusReport, OracleConsensus};
pub use reduction::CasFromCt;
pub use register::{WideRegister, WordRegister};
pub use snapshot::AtomicSnapshot;
pub use snapshot_ct::ProdigalCtCell;
