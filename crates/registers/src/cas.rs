//! The `Compare&Swap` object and the `consumeToken` object of Fig. 9, as
//! linearizable lock-free cells.
//!
//! Fig. 9 (left): `compare&swap(register, old, new)` writes `new` iff the
//! register holds `old`, and in any case returns the value held at the
//! start of the operation. CAS has consensus number ∞ (Herlihy [21]).
//!
//! Fig. 9 (right): `consumeToken(b^tknh_ℓ)` for Θ_F,k=1 — if `K[h]` is
//! empty (and the token genuine), install `{b}`; in any case return
//! `K[h]`'s content at the end of the operation. The correspondence the
//! paper draws: `b` is the *new value*, `K[h]` is the *register*, and the
//! implicit *old value* is "empty" — which is why Thm. 4.1 can implement
//! CAS from CT (see [`crate::reduction`]).
//!
//! Values are `u64` with `EMPTY = 0` reserved (block ids are stored +1 by
//! the consensus layer, so genuine payloads are never 0).

use crate::register::WordRegister;
use std::sync::atomic::Ordering;

/// Reserved encoding of "the cell is empty" / `{}`.
pub const EMPTY: u64 = 0;

/// A linearizable Compare&Swap register (Fig. 9 left).
#[derive(Debug, Default)]
pub struct CasRegister {
    cell: WordRegister,
}

impl CasRegister {
    pub fn new(initial: u64) -> Self {
        CasRegister {
            cell: WordRegister::new(initial),
        }
    }

    /// `compare&swap(register, old_value, new_value)`: installs
    /// `new_value` iff the register holds `old_value`; returns the value
    /// the register held when the operation took effect.
    pub fn compare_and_swap(&self, old_value: u64, new_value: u64) -> u64 {
        match self.cell.atomic().compare_exchange(
            old_value,
            new_value,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Plain atomic read.
    pub fn read(&self) -> u64 {
        self.cell.read()
    }
}

/// The `consumeToken` object for Θ_F,k=1 (Fig. 9 right): a one-shot cell
/// `K[h]` holding at most one block.
#[derive(Debug, Default)]
pub struct ConsumeTokenCell {
    cell: WordRegister,
}

impl ConsumeTokenCell {
    pub fn new() -> Self {
        ConsumeTokenCell {
            cell: WordRegister::new(EMPTY),
        }
    }

    /// `consumeToken(b^tknh_ℓ)`: if `K[h] == {}` install `{b}`; return the
    /// content of `K[h]` as the operation completes. `block` must not be
    /// `EMPTY` (that encoding is reserved; genuine tokens always carry a
    /// block — `tkn_h ∈ T` in the pseudo-code guard).
    pub fn consume_token(&self, block: u64) -> u64 {
        assert_ne!(block, EMPTY, "EMPTY encoding is reserved");
        match self
            .cell
            .atomic()
            .compare_exchange(EMPTY, block, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => block,    // we installed it: K[h] = {b}
            Err(prev) => prev, // already occupied: K[h] unchanged
        }
    }

    /// `get(K, h)` — current content (EMPTY if nothing consumed yet).
    pub fn get(&self) -> u64 {
        self.cell.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cas_success_and_failure() {
        let c = CasRegister::new(EMPTY);
        assert_eq!(c.compare_and_swap(EMPTY, 5), EMPTY, "success returns old");
        assert_eq!(c.read(), 5);
        assert_eq!(c.compare_and_swap(EMPTY, 9), 5, "failure returns current");
        assert_eq!(c.read(), 5, "failed CAS does not write");
        assert_eq!(c.compare_and_swap(5, 9), 5);
        assert_eq!(c.read(), 9);
    }

    #[test]
    fn cas_exactly_one_winner_under_contention() {
        for trial in 0..20 {
            let c = Arc::new(CasRegister::new(EMPTY));
            let winners: usize = std::thread::scope(|s| {
                (1..=8u64)
                    .map(|v| {
                        let c = Arc::clone(&c);
                        s.spawn(move || (c.compare_and_swap(EMPTY, v) == EMPTY) as usize)
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(winners, 1, "trial {trial}");
            assert_ne!(c.read(), EMPTY);
        }
    }

    #[test]
    fn ct_first_consume_installs() {
        let k = ConsumeTokenCell::new();
        assert_eq!(k.get(), EMPTY);
        assert_eq!(k.consume_token(3), 3);
        assert_eq!(k.get(), 3);
        assert_eq!(k.consume_token(7), 3, "k=1: second consume sees first");
        assert_eq!(k.get(), 3);
    }

    #[test]
    fn ct_exactly_one_winner_under_contention() {
        for trial in 0..20 {
            let k = Arc::new(ConsumeTokenCell::new());
            let results: Vec<u64> = std::thread::scope(|s| {
                (1..=8u64)
                    .map(|v| {
                        let k = Arc::clone(&k);
                        s.spawn(move || k.consume_token(v))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            // Every invocation returns the same single winner (the cell is
            // decided forever after the first install).
            let winner = k.get();
            assert_ne!(winner, EMPTY);
            assert!(
                results.iter().all(|&r| r == winner),
                "trial {trial}: all consumers must observe the winner; got {results:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn ct_rejects_empty_encoding() {
        ConsumeTokenCell::new().consume_token(EMPTY);
    }
}
