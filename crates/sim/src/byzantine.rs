//! Byzantine process behaviours (§4.2: "processes can exhibit a Byzantine
//! behavior, i.e. arbitrarily deviate from the protocol").
//!
//! Def. 4.2 restricts histories to events at *correct* processes — the
//! criteria say nothing about what Byzantine processes read. These
//! adversarial protocol wrappers let experiments check that the correct
//! processes' restricted history still satisfies the expected criterion in
//! the presence of:
//!
//! * [`Equivocator`] — mines two blocks under the same parent and sends
//!   *different* ones to different halves of the network (the classic
//!   split-view attack; needs a fork-permitting oracle to even mint both);
//! * [`Withholder`] — mines honestly but announces blocks only after a
//!   configurable delay (a crude selfish-mining ingredient).

use crate::lrc::gossip_applied;
use crate::world::{Ctx, Protocol};
use btadt_core::block::Payload;
use btadt_core::ids::{BlockId, ProcessId};

/// A split-view attacker: on each mining win it tries to mint a *second*
/// block under the same parent, then sends one branch to even-numbered
/// processes and the other to odd-numbered ones.
#[derive(Clone, Debug)]
pub struct Equivocator {
    pub producing: bool,
}

impl Equivocator {
    pub fn new() -> Self {
        Equivocator { producing: true }
    }
}

impl Default for Equivocator {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Equivocator {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        if !self.producing {
            return;
        }
        let parent = ctx.tip();
        let first = ctx.mine_at(parent, Payload::Opaque(1), 1);
        let second = ctx.mine_at(parent, Payload::Opaque(2), 1);
        match (first, second) {
            (Some(a), Some(b)) => {
                // Split the network: evens get a, odds get b.
                for p in 0..ctx.n {
                    let target = ProcessId(p as u32);
                    let block = if p % 2 == 0 { a } else { b };
                    ctx.send_block_to(target, parent, block);
                }
            }
            (Some(a), None) => {
                let p = ctx.store.get(a).parent.expect("mined");
                ctx.broadcast_block(p, a);
            }
            _ => {}
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        // Even the attacker keeps its replica coherent (it needs tips).
        ctx.apply_update(parent, block);
    }
}

/// Mines honestly but delays every announcement by `delay` ticks.
#[derive(Clone, Debug)]
pub struct Withholder {
    pub delay: u64,
    pub producing: bool,
    queue: Vec<(u64, BlockId, BlockId)>,
    ticks: u64,
}

impl Withholder {
    pub fn new(delay: u64) -> Self {
        Withholder {
            delay,
            producing: true,
            queue: Vec::new(),
            ticks: 0,
        }
    }
}

impl Protocol for Withholder {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.ticks += 1;
        // Release matured announcements.
        let due: Vec<(BlockId, BlockId)> = {
            let ticks = self.ticks;
            let (ready, rest): (Vec<_>, Vec<_>) =
                self.queue.drain(..).partition(|(t, _, _)| *t <= ticks);
            self.queue = rest;
            ready.into_iter().map(|(_, p, b)| (p, b)).collect()
        };
        for (parent, block) in due {
            ctx.broadcast_block(parent, block);
        }
        if !self.producing {
            return;
        }
        if let Some(block) = ctx.mine(Payload::Empty, 1) {
            let parent = ctx.store.get(block).parent.expect("mined");
            self.queue.push((self.ticks + self.delay, parent, block));
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        gossip_applied(ctx, parent, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexamples::SimpleMiner;
    use crate::network::NetworkModel;
    use crate::world::World;
    use btadt_core::selection::LongestChain;
    use btadt_oracle::{Merits, ThetaOracle};

    /// A mixed world: one process runs protocol `B`, the rest honest
    /// gossiping miners. We encode the mix with an enum.
    #[derive(Clone, Debug)]
    enum Node {
        Honest(SimpleMiner),
        Equivocator(Equivocator),
    }

    impl Protocol for Node {
        type Custom = ();

        fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
            match self {
                Node::Honest(m) => m.on_tick(ctx),
                Node::Equivocator(e) => e.on_tick(ctx),
            }
        }

        fn on_block(
            &mut self,
            ctx: &mut Ctx<'_, ()>,
            from: ProcessId,
            parent: BlockId,
            block: BlockId,
        ) {
            match self {
                Node::Honest(m) => m.on_block(ctx, from, parent, block),
                Node::Equivocator(e) => e.on_block(ctx, from, parent, block),
            }
        }
    }

    #[test]
    fn equivocation_splits_views_transiently_but_gossip_heals() {
        use btadt_core::criteria::{check_eventual_consistency, ConsistencyParams, LivenessMode};
        use btadt_core::score::LengthScore;
        use btadt_core::validity::AcceptAll;

        let seed = 3u64;
        // The attacker holds modest power; honest majority gossips.
        let merits = Merits::from_weights(vec![1.0, 1.0, 1.0, 1.0]);
        let oracle = ThetaOracle::prodigal(merits, 0.8, seed);
        let nodes = vec![
            Node::Equivocator(Equivocator::new()),
            Node::Honest(SimpleMiner::gossiping()),
            Node::Honest(SimpleMiner::gossiping()),
            Node::Honest(SimpleMiner::gossiping()),
        ];
        let mut w: World<Node> = World::new(
            nodes,
            oracle,
            NetworkModel::synchronous(2, seed),
            Box::new(LongestChain),
            seed,
        );
        w.mark_byzantine(ProcessId(0));
        w.read_every = Some(5);
        w.run_ticks(50);
        w.run_ticks(5);
        let cut = w.now();
        w.run_ticks(25);
        w.read_all();

        // Equivocation really happened: some parent has ≥ 2 children.
        let forked = w.store.ids().any(|b| w.store.children(b).len() >= 2);
        assert!(forked, "the attacker must have produced a split");

        // The correct-restricted history still satisfies EC.
        let restricted = w.trace.restrict_correct(&w.correct_mask());
        let params = ConsistencyParams {
            store: &w.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(cut),
        };
        let ec = check_eventual_consistency(&restricted.history, &params);
        assert!(ec.holds(), "honest gossip heals the split:\n{ec}");
    }

    #[test]
    fn withholding_delays_but_does_not_break_convergence() {
        use btadt_core::criteria::{check_eventual_consistency, ConsistencyParams, LivenessMode};
        use btadt_core::score::LengthScore;
        use btadt_core::validity::AcceptAll;

        #[derive(Clone, Debug)]
        enum N {
            H(SimpleMiner),
            W(Withholder),
        }
        impl Protocol for N {
            type Custom = ();
            fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
                match self {
                    N::H(m) => m.on_tick(ctx),
                    N::W(w) => w.on_tick(ctx),
                }
            }
            fn on_block(
                &mut self,
                ctx: &mut Ctx<'_, ()>,
                from: ProcessId,
                parent: BlockId,
                block: BlockId,
            ) {
                match self {
                    N::H(m) => m.on_block(ctx, from, parent, block),
                    N::W(w) => w.on_block(ctx, from, parent, block),
                }
            }
        }

        let seed = 9u64;
        let oracle = ThetaOracle::prodigal(Merits::uniform(3), 0.6, seed);
        let nodes = vec![
            N::W(Withholder::new(6)),
            N::H(SimpleMiner::gossiping()),
            N::H(SimpleMiner::gossiping()),
        ];
        let mut w: World<N> = World::new(
            nodes,
            oracle,
            NetworkModel::synchronous(2, seed),
            Box::new(LongestChain),
            seed,
        );
        w.mark_byzantine(ProcessId(0));
        w.read_every = Some(5);
        w.run_ticks(60);
        w.run_ticks(10); // settle: longer than the withholding delay
        let cut = w.now();
        w.run_ticks(30);
        w.read_all();
        let restricted = w.trace.restrict_correct(&w.correct_mask());
        let params = ConsistencyParams {
            store: &w.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(cut),
        };
        let ec = check_eventual_consistency(&restricted.history, &params);
        assert!(ec.holds(), "{ec}");
    }
}
