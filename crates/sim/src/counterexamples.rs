//! Executable adversarial constructions for the impossibility/necessity
//! results of §4.2–4.4:
//!
//! * **Thm. 4.8** — with any fork-permitting oracle (Θ_P or Θ_F,k>1), a
//!   synchronous fault-free execution exists whose reads violate Strong
//!   Prefix; with Θ_F,k=1 the same schedule stays strongly consistent.
//! * **Lemma 4.4** — violating R1 (a process applies its local update but
//!   never sends it) yields a history violating Eventual Prefix.
//! * **Lemma 4.5** — violating R3 (one correct process never receives an
//!   update others applied) yields a history violating Eventual Prefix.
//! * **Thm. 4.7** — an LRC-Agreement violation implies an Update-Agreement
//!   violation implies an Eventual-Consistency violation (the same run
//!   exhibits all three).
//!
//! Each driver returns a [`RunOutcome`] bundling the store, trace, fault
//! mask and suggested convergence cut, ready for the core criteria
//! checkers and the sim-side UA/LRC checkers.

use crate::lrc::gossip_applied;
use crate::network::{DropPolicy, NetworkModel};
use crate::trace::Trace;
use crate::world::{Ctx, Protocol, World};
use btadt_core::block::Payload;
use btadt_core::criteria::{
    check_eventual_consistency, check_strong_consistency, ConsistencyParams, ConsistencyReport,
    LivenessMode,
};
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::score::LengthScore;
use btadt_core::selection::LongestChain;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{KBound, Merits, ThetaOracle};

/// A generic miner for the counterexample worlds.
///
/// * `silent` — never announces its blocks (the R1 violation of Lemma 4.4);
/// * `gossip` — re-broadcasts blocks on first receipt (flooding echo: the
///   LRC implementation); without it, delivery is whatever the raw network
///   provides;
/// * `max_blocks` — stop mining after this many own blocks (`None` =
///   unbounded).
#[derive(Clone, Debug)]
pub struct SimpleMiner {
    pub silent: bool,
    pub gossip: bool,
    pub max_blocks: Option<u32>,
    mined: u32,
}

impl SimpleMiner {
    pub fn new() -> Self {
        SimpleMiner {
            silent: false,
            gossip: false,
            max_blocks: None,
            mined: 0,
        }
    }

    pub fn silent() -> Self {
        SimpleMiner {
            silent: true,
            ..Self::new()
        }
    }

    pub fn gossiping() -> Self {
        SimpleMiner {
            gossip: true,
            ..Self::new()
        }
    }

    pub fn with_max_blocks(mut self, n: u32) -> Self {
        self.max_blocks = Some(n);
        self
    }

    /// Blocks mined so far.
    pub fn mined(&self) -> u32 {
        self.mined
    }
}

impl Default for SimpleMiner {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for SimpleMiner {
    type Custom = ();

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
        if let Some(max) = self.max_blocks {
            if self.mined >= max {
                return;
            }
        }
        if let Some(block) = ctx.mine(Payload::Empty, 1) {
            self.mined += 1;
            if !self.silent {
                let parent = ctx.store.get(block).parent.expect("mined block");
                ctx.broadcast_block(parent, block);
            }
        }
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, ()>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        if self.gossip {
            gossip_applied(ctx, parent, block);
        } else {
            ctx.apply_update(parent, block);
        }
    }
}

/// Everything a counterexample run produces.
pub struct RunOutcome {
    pub store: BlockStore,
    pub trace: Trace,
    pub correct: Vec<bool>,
    /// Convergence cut (microticks) for the bounded liveness checkers.
    pub cut: Time,
}

impl RunOutcome {
    /// Evaluates both criteria with the run's cut.
    pub fn consistency(&self) -> (ConsistencyReport, ConsistencyReport) {
        let params = ConsistencyParams {
            store: &self.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(self.cut),
        };
        (
            check_strong_consistency(&self.trace.history, &params),
            check_eventual_consistency(&self.trace.history, &params),
        )
    }
}

/// Thm. 4.8 driver. Two correct processes on synchronous channels (δ = 4
/// ticks) simultaneously win tokens for `b0` and append; before the
/// cross-deliveries land, each reads its own branch. Returns the outcome;
/// under Θ_P / Θ_F,k>1 the reads are incomparable (Strong Prefix violated),
/// under Θ_F,k=1 the oracle serializes and Strong Prefix survives.
pub fn theorem_4_8(k: KBound, seed: u64) -> RunOutcome {
    // rate 2.0 over 2 uniform merits ⇒ p = 1: both processes win their
    // very first attempt, at the same tick.
    let merits = Merits::uniform(2);
    let oracle = match k {
        KBound::Finite(k) => ThetaOracle::frugal(k, merits, 2.0, seed),
        KBound::Infinite => ThetaOracle::prodigal(merits, 2.0, seed),
    };
    let net = NetworkModel::synchronous(4, seed);
    let miners = vec![
        SimpleMiner::new().with_max_blocks(1),
        SimpleMiner::new().with_max_blocks(1),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);

    // Tick 1: both mine concurrently (process order within the tick, but
    // both target b0 since neither has seen the other's block).
    w.run_ticks(1);
    // Reads before any cross delivery can land (δ ≥ 2): the divergent pair.
    w.read_all();
    // Let deliveries land and the system converge, then the post-cut reads.
    w.run_ticks(10);
    let cut = w.now();
    // Growth after the cut (EGT): mine a couple more blocks, synchronized.
    w.protocol_mut(ProcessId(0)).max_blocks = Some(3);
    w.run_ticks(12);
    w.read_all();
    w.run_ticks(1);
    w.read_all();

    RunOutcome {
        store: w.store.clone(),
        trace: w.trace.clone(),
        correct: w.correct_mask(),
        cut,
    }
}

/// Lemma 4.4 driver: process 0 mines but **never sends** (R1 violated);
/// process 1 mines nothing (merit 0). Process 1's view stays at `{b0}`
/// forever while process 0 grows — Eventual Prefix is violated.
pub fn lemma_4_4(seed: u64) -> RunOutcome {
    let merits = Merits::from_weights(vec![1.0, 0.0]);
    let oracle = ThetaOracle::prodigal(merits, 0.6, seed);
    let net = NetworkModel::synchronous(2, seed);
    let miners = vec![SimpleMiner::silent(), SimpleMiner::new()];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    w.run_ticks(40);
    let cut = w.now();
    w.run_ticks(20); // p0 keeps mining (growth for its own reads)
    w.read_all();
    RunOutcome {
        store: w.store.clone(),
        trace: w.trace.clone(),
        correct: w.correct_mask(),
        cut,
    }
}

/// Lemma 4.5 / Thm. 4.7 driver: three processes; the channel 0 → 2 drops
/// everything and nobody echoes (no LRC), so process 2 never receives
/// process 0's updates (R3 and LRC-Agreement violated) while process 1
/// applies them — Eventual Prefix is violated.
pub fn lemma_4_5(seed: u64) -> RunOutcome {
    let merits = Merits::from_weights(vec![1.0, 0.0, 0.0]);
    let oracle = ThetaOracle::prodigal(merits, 0.6, seed);
    let net = NetworkModel::synchronous(2, seed).with_drops(DropPolicy::All {
        from: Some(ProcessId(0)),
        to: Some(ProcessId(2)),
    });
    let miners = vec![SimpleMiner::new(), SimpleMiner::new(), SimpleMiner::new()];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    w.run_ticks(40);
    let cut = w.now();
    w.run_ticks(20);
    w.read_all();
    RunOutcome {
        store: w.store.clone(),
        trace: w.trace.clone(),
        correct: w.correct_mask(),
        cut,
    }
}

/// Positive control (Fig. 13): gossip-echoing miners on synchronous
/// channels satisfy LRC, Update Agreement, and Eventual Consistency.
pub fn update_agreement_positive(seed: u64) -> RunOutcome {
    let merits = Merits::uniform(3);
    let oracle = ThetaOracle::prodigal(merits, 0.5, seed);
    let net = NetworkModel::synchronous(2, seed);
    let miners = vec![
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(8);
    w.run_ticks(60);
    // Let in-flight messages settle before cutting, so post-cut reads are
    // convergent.
    w.run_ticks(6);
    let cut = w.now();
    w.run_ticks(30);
    // Stop mining, then drain so every send is delivered before the trace
    // ends (LRC/UA are liveness properties: evaluate on a settled trace).
    for p in 0..3u32 {
        let mined = w.protocol(ProcessId(p)).mined();
        w.protocol_mut(ProcessId(p)).max_blocks = Some(mined);
    }
    w.run_ticks(8);
    w.read_all();
    RunOutcome {
        store: w.store.clone(),
        trace: w.trace.clone(),
        correct: w.correct_mask(),
        cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::check_update_agreement;
    use crate::lrc::check_lrc;

    #[test]
    fn theorem_4_8_forking_oracles_violate_strong_prefix() {
        for k in [KBound::Infinite, KBound::Finite(2)] {
            let out = theorem_4_8(k, 42);
            let (sc, _ec) = out.consistency();
            assert!(
                !sc.holds(),
                "{k:?}: fork-permitting oracle must break Strong Prefix"
            );
            let sp = sc.strong_prefix.as_ref().unwrap();
            assert!(!sp.holds, "the violation must be in Strong Prefix itself");
        }
    }

    #[test]
    fn theorem_4_8_k1_preserves_strong_prefix() {
        let out = theorem_4_8(KBound::Finite(1), 42);
        let (sc, ec) = out.consistency();
        assert!(sc.holds(), "Θ_F,k=1 must serialize:\n{sc}");
        assert!(ec.holds(), "Thm 3.1: SC ⇒ EC\n{ec}");
    }

    #[test]
    fn lemma_4_4_r1_violation_breaks_eventual_prefix() {
        let out = lemma_4_4(7);
        let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
        assert!(!ua.r1, "the silent miner violates R1:\n{ua}");
        let (_sc, ec) = out.consistency();
        assert!(!ec.holds(), "Lemma 4.4: EC must fail");
        let ep = ec.eventual_prefix.as_ref().unwrap();
        assert!(!ep.holds, "specifically Eventual Prefix:\n{ec}");
    }

    #[test]
    fn lemma_4_5_r3_violation_breaks_eventual_prefix() {
        let out = lemma_4_5(7);
        let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
        assert!(ua.r1, "sends do happen");
        assert!(!ua.r3, "p2 never receives:\n{ua}");
        let (_sc, ec) = out.consistency();
        assert!(!ec.holds());
        assert!(!ec.eventual_prefix.as_ref().unwrap().holds);
    }

    #[test]
    fn theorem_4_7_lrc_violation_chain() {
        let out = lemma_4_5(13);
        let lrc = check_lrc(&out.trace, &out.correct);
        assert!(!lrc.agreement, "LRC Agreement violated:\n{lrc}");
        let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
        assert!(!ua.holds(), "⇒ Update Agreement violated");
        let (_sc, ec) = out.consistency();
        assert!(!ec.holds(), "⇒ Eventual Consistency violated");
    }

    #[test]
    fn positive_control_satisfies_everything() {
        let out = update_agreement_positive(5);
        let lrc = check_lrc(&out.trace, &out.correct);
        assert!(lrc.holds(), "{lrc}");
        let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
        assert!(ua.holds(), "{ua}");
        let (_sc, ec) = out.consistency();
        assert!(ec.holds(), "{ec}");
    }

    #[test]
    fn outcomes_are_deterministic() {
        let a = lemma_4_4(3);
        let b = lemma_4_4(3);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
        assert_eq!(a.store.len(), b.store.len());
        assert_eq!(a.cut, b.cut);
    }
}
