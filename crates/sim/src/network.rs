//! Channel models of §4.2.
//!
//! "Communication channels are *asynchronous* if there is no upper bound on
//! the message delivery delay … *synchronous* if messages sent by correct
//! processes at time `t` are delivered by correct processes by time `t+δ` …
//! *weakly synchronous* if there exists an a-priori-unknown time `τ` after
//! which the communication channels behave as synchronous."
//!
//! On top of the synchrony model sit fault layers: targeted or
//! probabilistic message drops (for the Lemma 4.4/4.5 and Thm. 4.7
//! necessity counterexamples) and partitions (healing or permanent).
//! Everything is seeded and deterministic.

use btadt_core::ids::{splitmix64_at, ProcessId, Time};

/// The synchrony regime of the channels.
#[derive(Clone, Copy, Debug)]
pub enum Synchrony {
    /// Delivery within `1..=delta` ticks.
    Synchronous { delta: u64 },
    /// Before `tau`: delivery within `1..=wild` (unbounded in spirit);
    /// from `tau` on: within `1..=delta`.
    WeaklySynchronous { tau: u64, delta: u64, wild: u64 },
    /// No bound known to the processes; the simulator draws delays in
    /// `1..=max` with a heavy tail (delays are always finite — messages
    /// sent by correct processes are eventually delivered unless a fault
    /// layer drops them).
    Asynchronous { max: u64 },
}

/// Deterministic message-drop policies (the fault layer).
#[derive(Clone, Debug, Default)]
pub enum DropPolicy {
    /// No drops.
    #[default]
    None,
    /// Drop every message matching the (optional) source/destination
    /// filters — `All { from: Some(i), to: Some(k) }` silences the i→k
    /// channel (Lemma 4.5); `All { from: Some(i), to: None }` silences
    /// process i's sends entirely (Lemma 4.4 / R1 violation).
    All {
        from: Option<ProcessId>,
        to: Option<ProcessId>,
    },
    /// Drop each message independently with probability `p`.
    Probabilistic { p: f64 },
}

/// A network partition: messages across groups are dropped until `heals_at`
/// (`None` = permanent partition).
#[derive(Clone, Debug)]
pub struct Partition {
    /// group id per process (same id = same side).
    pub group_of: Vec<u32>,
    /// When the partition heals (cross-group messages flow again).
    pub heals_at: Option<Time>,
}

impl Partition {
    /// Splits processes `0..n` into two halves at `split`.
    pub fn halves(n: usize, split: usize, heals_at: Option<Time>) -> Self {
        Partition {
            group_of: (0..n).map(|p| u32::from(p >= split)).collect(),
            heals_at,
        }
    }

    fn separates(&self, from: ProcessId, to: ProcessId, now: Time) -> bool {
        if let Some(h) = self.heals_at {
            if now >= h {
                return false;
            }
        }
        self.group_of[from.index()] != self.group_of[to.index()]
    }
}

/// The full network model: synchrony + faults, with its own random stream.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    pub synchrony: Synchrony,
    pub drops: DropPolicy,
    pub partition: Option<Partition>,
    seed: u64,
    draws: u64,
}

impl NetworkModel {
    pub fn new(synchrony: Synchrony, seed: u64) -> Self {
        NetworkModel {
            synchrony,
            drops: DropPolicy::None,
            partition: None,
            seed,
            draws: 0,
        }
    }

    /// Convenience: synchronous channels with bound `delta`.
    pub fn synchronous(delta: u64, seed: u64) -> Self {
        Self::new(Synchrony::Synchronous { delta }, seed)
    }

    pub fn with_drops(mut self, drops: DropPolicy) -> Self {
        self.drops = drops;
        self
    }

    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    fn draw(&mut self) -> u64 {
        let v = splitmix64_at(self.seed, self.draws);
        self.draws += 1;
        v
    }

    /// Decides the fate of a message sent `from → to` at `now`:
    /// `Some(delivery_time)` or `None` (dropped).
    pub fn route(&mut self, from: ProcessId, to: ProcessId, now: Time) -> Option<Time> {
        // Fault layers first (cloned out so the RNG can advance).
        let drops = self.drops.clone();
        match drops {
            DropPolicy::None => {}
            DropPolicy::All { from: f, to: t } => {
                let f_match = f.is_none_or(|x| x == from);
                let t_match = t.is_none_or(|x| x == to);
                if f_match && t_match {
                    return None;
                }
            }
            DropPolicy::Probabilistic { p } => {
                let x = (self.draw() >> 11) as f64 / (1u64 << 53) as f64;
                if x < p {
                    return None;
                }
            }
        }
        let partition = self.partition.clone();
        if let Some(part) = partition {
            if part.separates(from, to, now) {
                match part.heals_at {
                    // Queued at the healing boundary (eventual delivery).
                    Some(h) => {
                        let jitter = 1 + self.draw() % 3;
                        return Some(Time(h.0 + jitter));
                    }
                    None => return None,
                }
            }
        }
        // Synchrony delay.
        let delay = match self.synchrony {
            Synchrony::Synchronous { delta } => 1 + self.draw() % delta.max(1),
            Synchrony::WeaklySynchronous { tau, delta, wild } => {
                if now.0 < tau {
                    1 + self.draw() % wild.max(1)
                } else {
                    1 + self.draw() % delta.max(1)
                }
            }
            Synchrony::Asynchronous { max } => {
                // Heavy-ish tail: occasionally take the full range.
                let r = self.draw();
                if r.is_multiple_of(8) {
                    1 + self.draw() % max.max(1)
                } else {
                    1 + self.draw() % (max / 4).max(1)
                }
            }
        };
        Some(now.plus(delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_respects_delta() {
        let mut net = NetworkModel::synchronous(5, 1);
        for t in 0..200u64 {
            let d = net
                .route(ProcessId(0), ProcessId(1), Time(t))
                .expect("no drops configured");
            assert!(d.0 > t && d.0 <= t + 5, "delivery {d} outside (t, t+5]");
        }
    }

    #[test]
    fn weakly_synchronous_stabilizes() {
        let mut net = NetworkModel::new(
            Synchrony::WeaklySynchronous {
                tau: 100,
                delta: 3,
                wild: 50,
            },
            2,
        );
        let mut early_max = 0;
        for t in 0..100u64 {
            let d = net.route(ProcessId(0), ProcessId(1), Time(t)).unwrap();
            early_max = early_max.max(d.0 - t);
        }
        assert!(early_max > 3, "pre-τ delays exceed δ somewhere");
        for t in 100..300u64 {
            let d = net.route(ProcessId(0), ProcessId(1), Time(t)).unwrap();
            assert!(d.0 - t <= 3, "post-τ delay must be ≤ δ");
        }
    }

    #[test]
    fn asynchronous_is_finite_and_varied() {
        let mut net = NetworkModel::new(Synchrony::Asynchronous { max: 64 }, 3);
        let mut seen = std::collections::HashSet::new();
        for t in 0..500u64 {
            let d = net.route(ProcessId(0), ProcessId(1), Time(t)).unwrap();
            assert!(d.0 > t && d.0 <= t + 64);
            seen.insert(d.0 - t);
        }
        assert!(seen.len() > 5, "delays should vary");
    }

    #[test]
    fn targeted_drop_silences_one_channel() {
        let mut net = NetworkModel::synchronous(2, 4).with_drops(DropPolicy::All {
            from: Some(ProcessId(0)),
            to: Some(ProcessId(2)),
        });
        assert!(net.route(ProcessId(0), ProcessId(2), Time(0)).is_none());
        assert!(net.route(ProcessId(0), ProcessId(1), Time(0)).is_some());
        assert!(net.route(ProcessId(1), ProcessId(2), Time(0)).is_some());
    }

    #[test]
    fn sender_wide_drop() {
        let mut net = NetworkModel::synchronous(2, 5).with_drops(DropPolicy::All {
            from: Some(ProcessId(1)),
            to: None,
        });
        assert!(net.route(ProcessId(1), ProcessId(0), Time(0)).is_none());
        assert!(net.route(ProcessId(1), ProcessId(2), Time(0)).is_none());
        assert!(net.route(ProcessId(0), ProcessId(1), Time(0)).is_some());
    }

    #[test]
    fn probabilistic_drop_rate() {
        let mut net =
            NetworkModel::synchronous(2, 6).with_drops(DropPolicy::Probabilistic { p: 0.3 });
        let n = 5000;
        let dropped = (0..n)
            .filter(|&t| net.route(ProcessId(0), ProcessId(1), Time(t)).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn healing_partition_queues_messages() {
        let part = Partition::halves(4, 2, Some(Time(100)));
        let mut net = NetworkModel::synchronous(2, 7).with_partition(part);
        // Cross-group before healing: delivered after the heal point.
        let d = net.route(ProcessId(0), ProcessId(3), Time(10)).unwrap();
        assert!(d.0 > 100);
        // Same-group: normal.
        let d = net.route(ProcessId(0), ProcessId(1), Time(10)).unwrap();
        assert!(d.0 <= 12);
        // After healing: normal.
        let d = net.route(ProcessId(0), ProcessId(3), Time(150)).unwrap();
        assert!(d.0 <= 152);
    }

    #[test]
    fn permanent_partition_drops() {
        let part = Partition::halves(2, 1, None);
        let mut net = NetworkModel::synchronous(2, 8).with_partition(part);
        assert!(net.route(ProcessId(0), ProcessId(1), Time(5)).is_none());
        assert!(net.route(ProcessId(1), ProcessId(0), Time(5)).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = NetworkModel::new(Synchrony::Asynchronous { max: 32 }, seed);
            (0..50u64)
                .map(|t| net.route(ProcessId(0), ProcessId(1), Time(t)).unwrap().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
