//! # btadt-sim — deterministic message-passing substrate (§4.2–4.4)
//!
//! A seeded discrete-event simulator for the paper's message-passing
//! system model: `n` processes running a [`Protocol`](world::Protocol),
//! Byzantine/crash faults, synchronous / weakly-synchronous / asynchronous
//! channels with drop and partition fault layers, replicated BlockTrees
//! with the `send/receive/update` vocabulary of Def. 4.2, and trace-level
//! checkers for Update Agreement (Def. 4.3) and Light Reliable
//! Communication (Def. 4.4).
//!
//! | Paper | Module |
//! |---|---|
//! | §4.2 channel models | [`network`] |
//! | §4.2 replicated `bt_i`, update semantics | [`replica`] |
//! | Def. 4.2 event vocabulary | [`trace`] |
//! | Def. 4.3 / Fig. 13 Update Agreement | [`agreement`] |
//! | Def. 4.4 LRC | [`lrc`] |
//! | the simulator itself | [`world`] |
//! | kill−restart crash injection (PR 7 durability) | [`crashsim`] |
//! | Thm. 4.8, Lemmas 4.4/4.5, Thm. 4.7 drivers | [`counterexamples`] |

pub mod agreement;
pub mod byzantine;
pub mod counterexamples;
pub mod crashsim;
pub mod lrc;
pub mod mtrun;
pub mod network;
pub mod replica;
pub mod trace;
pub mod world;

pub use agreement::{check_update_agreement, UpdateAgreementReport};
pub use byzantine::{Equivocator, Withholder};
pub use counterexamples::{
    lemma_4_4, lemma_4_5, theorem_4_8, update_agreement_positive, RunOutcome, SimpleMiner,
};
pub use crashsim::{
    crash_dir_from_env, fault_seed_from_env, read_acked, read_all_acked, spawn_self_test, AckLog,
    CRASH_DIR_ENV, FAULT_SEED_ENV,
};
pub use lrc::{check_lrc, gossip_applied, LrcReport};
pub use mtrun::{
    recover_durable, run_concurrent_workload, run_durable_fault_workload, FaultRun, MtConfig, MtRun,
};
pub use network::{DropPolicy, NetworkModel, Partition, Synchrony};
pub use replica::Replica;
pub use trace::{Trace, TraceEvent};
pub use world::{Ctx, Msg, Protocol, World, TICK};
