//! Update Agreement (Def. 4.3, Fig. 13) — the necessary condition for
//! Eventual Prefix in message passing (Thm. 4.6).
//!
//! * **R1** — `∀ update_i(b_g, b_i) ∈ H, ∃ send_i(b_g, b_i) ∈ H`: a
//!   process that applies a *locally generated* block must send it;
//! * **R2** — `∀ update_i(b_g, b_j) ∈ H, ∃ receive_i(b_g, b_j)` preceding
//!   it: applying a *remote* block requires having received it;
//! * **R3** — `∀ update_i(b_g, b_j) ∈ H, ∀k, ∃ receive_k(b_g, b_j)`: any
//!   applied update is eventually received by **every** correct process.
//!
//! The checker evaluates all three on a recorded [`Trace`], restricted to
//! correct processes (Def. 4.2).

use crate::trace::Trace;
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::store::BlockStore;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The verdicts and witnesses for R1–R3.
#[derive(Clone, Debug)]
pub struct UpdateAgreementReport {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    /// `(process, block)` updates of local blocks never sent.
    pub r1_violations: Vec<(ProcessId, BlockId)>,
    /// `(process, block)` remote updates applied without a prior receive.
    pub r2_violations: Vec<(ProcessId, BlockId)>,
    /// `(missing_receiver, block)` applied updates never received by a
    /// correct process.
    pub r3_violations: Vec<(ProcessId, BlockId)>,
}

impl UpdateAgreementReport {
    pub fn holds(&self) -> bool {
        self.r1 && self.r2 && self.r3
    }
}

impl fmt::Display for UpdateAgreementReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Update Agreement: {}",
            if self.holds() { "HOLDS" } else { "VIOLATED" }
        )?;
        writeln!(f, "  R1 (local update ⇒ sent):        {}", ok(self.r1))?;
        writeln!(f, "  R2 (remote update ⇒ received):   {}", ok(self.r2))?;
        writeln!(f, "  R3 (update ⇒ received by all):   {}", ok(self.r3))?;
        for (p, b) in self.r1_violations.iter().take(3) {
            writeln!(f, "    R1 witness: update_{p}(·, {b}) without send_{p}")?;
        }
        for (p, b) in self.r2_violations.iter().take(3) {
            writeln!(f, "    R2 witness: update_{p}(·, {b}) without receive_{p}")?;
        }
        for (p, b) in self.r3_violations.iter().take(3) {
            writeln!(f, "    R3 witness: {b} never received by {p}")?;
        }
        Ok(())
    }
}

fn ok(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

/// Checks R1–R3 on a trace. `correct[i]` marks the correct processes; the
/// trace is first restricted to them (Def. 4.2).
pub fn check_update_agreement(
    trace: &Trace,
    store: &BlockStore,
    correct: &[bool],
) -> UpdateAgreementReport {
    let trace = trace.restrict_correct(correct);
    let is_correct = |p: ProcessId| correct.get(p.index()).copied().unwrap_or(false);

    // Index sends and receives.
    let mut sent_by: HashSet<(ProcessId, BlockId)> = HashSet::new();
    for (_, by, _, block) in trace.sends() {
        sent_by.insert((by, block));
    }
    let mut first_receive: HashMap<(ProcessId, BlockId), Time> = HashMap::new();
    for (at, by, _, block) in trace.receives() {
        let e = first_receive.entry((by, block)).or_insert(at);
        if at < *e {
            *e = at;
        }
    }

    let mut r1_violations = Vec::new();
    let mut r2_violations = Vec::new();
    let mut r3_violations = Vec::new();

    let mut applied_blocks: HashSet<BlockId> = HashSet::new();
    for (at, by, _parent, block) in trace.updates() {
        applied_blocks.insert(block);
        let producer = store.get(block).producer;
        if producer == by {
            // R1: local generation must be followed by a send (anywhere in
            // H — liveness, so we just require existence).
            if !sent_by.contains(&(by, block)) {
                r1_violations.push((by, block));
            }
        } else {
            // R2: remote application needs a receive before the update.
            match first_receive.get(&(by, block)) {
                Some(&t) if t <= at => {}
                _ => r2_violations.push((by, block)),
            }
        }
    }

    // R3: every applied block reaches every correct process.
    let n = correct.len();
    for &block in &applied_blocks {
        for k in 0..n {
            let k = ProcessId(k as u32);
            if !is_correct(k) {
                continue;
            }
            if !first_receive.contains_key(&(k, block)) {
                r3_violations.push((k, block));
            }
        }
    }

    r1_violations.sort();
    r2_violations.sort();
    r3_violations.sort();
    UpdateAgreementReport {
        r1: r1_violations.is_empty(),
        r2: r2_violations.is_empty(),
        r3: r3_violations.is_empty(),
        r1_violations,
        r2_violations,
        r3_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::block::Payload;

    fn store_with_block(producer: u32) -> (BlockStore, BlockId) {
        let mut s = BlockStore::new();
        let b = s.mint(
            BlockId::GENESIS,
            ProcessId(producer),
            producer,
            1,
            1,
            Payload::Empty,
        );
        (s, b)
    }

    /// The Fig. 13 history: i updates, sends; i, j, k all receive; j and k
    /// update after their receives — R1, R2, R3 all hold.
    #[test]
    fn figure_13_history_satisfies_update_agreement() {
        let (store, b) = store_with_block(0);
        let g = BlockId::GENESIS;
        let (i, j, k) = (ProcessId(0), ProcessId(1), ProcessId(2));
        let mut t = Trace::new();
        t.record_update(Time(1), i, g, b);
        t.record_send(Time(2), i, g, b);
        t.record_receive(Time(4), i, i, g, b);
        t.record_receive(Time(5), j, i, g, b);
        t.record_receive(Time(6), k, i, g, b);
        t.record_update(Time(7), j, g, b);
        t.record_update(Time(8), k, g, b);
        let rep = check_update_agreement(&t, &store, &[true, true, true]);
        assert!(rep.holds(), "{rep}");
    }

    #[test]
    fn missing_send_violates_r1() {
        let (store, b) = store_with_block(0);
        let mut t = Trace::new();
        t.record_update(Time(1), ProcessId(0), BlockId::GENESIS, b);
        let rep = check_update_agreement(&t, &store, &[true, true]);
        assert!(!rep.r1);
        assert_eq!(rep.r1_violations, vec![(ProcessId(0), b)]);
        // R3 also fails: nobody received it.
        assert!(!rep.r3);
    }

    #[test]
    fn remote_update_without_receive_violates_r2() {
        let (store, b) = store_with_block(0);
        let g = BlockId::GENESIS;
        let mut t = Trace::new();
        t.record_update(Time(1), ProcessId(0), g, b);
        t.record_send(Time(2), ProcessId(0), g, b);
        // p1 applies without ever receiving (e.g. out-of-band cheat).
        t.record_update(Time(3), ProcessId(1), g, b);
        // Give everyone receives so R3 isolates R2... except p1.
        t.record_receive(Time(4), ProcessId(0), ProcessId(0), g, b);
        t.record_receive(Time(5), ProcessId(1), ProcessId(0), g, b); // after update!
        let rep = check_update_agreement(&t, &store, &[true, true]);
        assert!(rep.r1);
        assert!(!rep.r2, "receive after update does not satisfy R2");
        assert_eq!(rep.r2_violations, vec![(ProcessId(1), b)]);
    }

    #[test]
    fn missing_receiver_violates_r3() {
        let (store, b) = store_with_block(0);
        let g = BlockId::GENESIS;
        let mut t = Trace::new();
        t.record_update(Time(1), ProcessId(0), g, b);
        t.record_send(Time(2), ProcessId(0), g, b);
        t.record_receive(Time(3), ProcessId(0), ProcessId(0), g, b);
        t.record_receive(Time(4), ProcessId(1), ProcessId(0), g, b);
        t.record_update(Time(5), ProcessId(1), g, b);
        // ProcessId(2) never receives.
        let rep = check_update_agreement(&t, &store, &[true, true, true]);
        assert!(rep.r1 && rep.r2);
        assert!(!rep.r3);
        assert_eq!(rep.r3_violations, vec![(ProcessId(2), b)]);
    }

    #[test]
    fn faulty_processes_are_exempt() {
        let (store, b) = store_with_block(0);
        let g = BlockId::GENESIS;
        let mut t = Trace::new();
        t.record_update(Time(1), ProcessId(0), g, b);
        t.record_send(Time(2), ProcessId(0), g, b);
        t.record_receive(Time(3), ProcessId(0), ProcessId(0), g, b);
        t.record_receive(Time(4), ProcessId(1), ProcessId(0), g, b);
        t.record_update(Time(5), ProcessId(1), g, b);
        // p2 is faulty: its missing receive does not violate R3.
        let rep = check_update_agreement(&t, &store, &[true, true, false]);
        assert!(rep.holds(), "{rep}");
    }

    #[test]
    fn report_display_shows_witnesses() {
        let (store, b) = store_with_block(0);
        let mut t = Trace::new();
        t.record_update(Time(1), ProcessId(0), BlockId::GENESIS, b);
        let rep = check_update_agreement(&t, &store, &[true]);
        let text = format!("{rep}");
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("R1 witness"));
    }
}
