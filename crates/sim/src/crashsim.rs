//! Kill−restart crash injection: real `SIGKILL`, real files, no mocks.
//!
//! The WAL's contract is stated over *process death*, so the harness
//! tests exactly that: a test re-spawns its own test binary filtered to
//! a child workload (`current_exe` + `--exact`), lets the child hammer a
//! durable [`ConcurrentBlockTree`](btadt_core::concurrent::ConcurrentBlockTree)
//! for a while, then `kill()`s it — `SIGKILL`, no unwinding, no `Drop`,
//! the closest a test gets to yanking the plug — and recovers the WAL
//! directory in-process to check what survived.
//!
//! The observable the parent checks is the **ack log**: the child
//! records each append's id to a side file *after* the append returns —
//! and a durable append returns only after its batch's fsync
//! (persist-then-ack) — so at kill time every recorded id is provably
//! durable, and `acked ⊆ recovered` is exactly the guarantee the WAL
//! sells. Ack records are single unbuffered `write`s: a `SIGKILL`
//! cannot lose a completed `write(2)` (the page cache survives process
//! death), and a torn final line only *under*-reports acks, which
//! weakens the check in the safe direction. [`read_acked`] parses
//! accordingly: complete lines only, a ragged tail ignored.

use btadt_core::ids::BlockId;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Environment variable carrying the crash directory to the child; its
/// presence is what arms the child-side workload test.
pub const CRASH_DIR_ENV: &str = "BTADT_CRASH_DIR";

/// The crash directory this process was armed with, if any. Child-side
/// workload tests return immediately (vacuously passing) without it.
pub fn crash_dir_from_env() -> Option<PathBuf> {
    std::env::var_os(CRASH_DIR_ENV).map(PathBuf::from)
}

/// Environment variable overriding the base seed of the fault-injected
/// durability lanes (decimal `u64`). A failing CI seed replays locally
/// with `BTADT_FAULT_SEED=<seed> cargo test -p btadt-sim fault` — the
/// whole schedule ([`FaultConfig::seeded`](btadt_core::vfs::FaultConfig))
/// derives from the seed alone.
pub const FAULT_SEED_ENV: &str = "BTADT_FAULT_SEED";

/// The fault-seed override, if set and parsable.
pub fn fault_seed_from_env() -> Option<u64> {
    std::env::var(FAULT_SEED_ENV).ok()?.trim().parse().ok()
}

/// Append-only log of acked ids, one per line, each a single unbuffered
/// `write` issued strictly after the corresponding tree append returned.
pub struct AckLog {
    file: File,
}

impl AckLog {
    /// Creates (truncating) the ack log at `path`.
    pub fn create(path: &Path) -> std::io::Result<AckLog> {
        Ok(AckLog {
            file: OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(path)?,
        })
    }

    /// Records one acked id. One `write` syscall, no buffering: either
    /// the whole line lands or (killed mid-write) a torn tail that
    /// [`read_acked`] discards.
    pub fn record(&mut self, id: BlockId) {
        let line = format!("{}\n", id.0);
        self.file.write_all(line.as_bytes()).expect("ack log write");
    }
}

/// Reads an ack log leniently: complete `id\n` lines in order, a torn
/// final line (no trailing newline, or unparsable) silently dropped.
pub fn read_acked(path: &Path) -> Vec<BlockId> {
    let Ok(data) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = data.as_str();
    while let Some(nl) = rest.find('\n') {
        if let Ok(raw) = rest[..nl].trim().parse::<u32>() {
            out.push(BlockId(raw));
        }
        rest = &rest[nl + 1..];
    }
    out
}

/// All `acked-*.log` lanes under `dir`, one vector per file, each in its
/// writer's append order.
pub fn read_all_acked(dir: &Path) -> Vec<Vec<BlockId>> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("acked-") && n.ends_with(".log"))
        })
        .collect();
    paths.sort();
    paths.iter().map(|p| read_acked(p)).collect()
}

/// Re-spawns the current test binary running exactly `test_name`, armed
/// with `crash_dir` via [`CRASH_DIR_ENV`]. The caller owns the child:
/// poll its ack lanes, then `kill()` (SIGKILL) and `wait()` it.
pub fn spawn_self_test(test_name: &str, crash_dir: &Path) -> std::io::Result<Child> {
    Command::new(std::env::current_exe()?)
        .args([test_name, "--exact", "--test-threads", "1"])
        .env(CRASH_DIR_ENV, crash_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}
