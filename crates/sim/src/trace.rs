//! Execution traces: the event vocabulary of §4.2 / Def. 4.2.
//!
//! A message-passing execution is recorded as a sequence of
//! `send_i(b_g, b_i)`, `receive_j(b_g, b_i)`, and `update_i(b_g, b_i)`
//! events (block dissemination), plus the BT-ADT `read`/`append` operations
//! which are stored as a [`History`] for the consistency checkers.
//!
//! Def. 4.2 restricts the history to events at *correct* processes (plus
//! all valid `append` invocations); [`Trace::restrict_correct`] applies
//! that restriction given the fault sets.

use btadt_core::chain::Blockchain;
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{BlockId, ProcessId, Time};
use std::fmt;

/// One recorded dissemination event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `send_i(b_g, b_i)`: process `by` broadcast block `block` (chained
    /// under `parent`).
    Send {
        at: Time,
        by: ProcessId,
        parent: BlockId,
        block: BlockId,
    },
    /// `receive_j(b_g, b_i)`: process `by` received the announcement
    /// originally sent by `from`.
    Receive {
        at: Time,
        by: ProcessId,
        from: ProcessId,
        parent: BlockId,
        block: BlockId,
    },
    /// `update_i(b_g, b_i)`: process `by` inserted `block` into its local
    /// BlockTree replica.
    Update {
        at: Time,
        by: ProcessId,
        parent: BlockId,
        block: BlockId,
    },
}

impl TraceEvent {
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Receive { at, .. }
            | TraceEvent::Update { at, .. } => *at,
        }
    }

    pub fn by(&self) -> ProcessId {
        match self {
            TraceEvent::Send { by, .. }
            | TraceEvent::Receive { by, .. }
            | TraceEvent::Update { by, .. } => *by,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Send {
                at,
                by,
                parent,
                block,
            } => write!(f, "[{at}] send_{by}({parent}, {block})"),
            TraceEvent::Receive {
                at,
                by,
                from,
                parent,
                block,
            } => write!(f, "[{at}] receive_{by}({parent}, {block}) from {from}"),
            TraceEvent::Update {
                at,
                by,
                parent,
                block,
            } => write!(f, "[{at}] update_{by}({parent}, {block})"),
        }
    }
}

/// The full record of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Dissemination events, in global-clock order of recording.
    pub events: Vec<TraceEvent>,
    /// BT-ADT operations (reads/appends) for the consistency checkers.
    pub history: History,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_send(&mut self, at: Time, by: ProcessId, parent: BlockId, block: BlockId) {
        self.events.push(TraceEvent::Send {
            at,
            by,
            parent,
            block,
        });
    }

    pub fn record_receive(
        &mut self,
        at: Time,
        by: ProcessId,
        from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        self.events.push(TraceEvent::Receive {
            at,
            by,
            from,
            parent,
            block,
        });
    }

    pub fn record_update(&mut self, at: Time, by: ProcessId, parent: BlockId, block: BlockId) {
        self.events.push(TraceEvent::Update {
            at,
            by,
            parent,
            block,
        });
    }

    /// Records a completed `append(b)` operation (invocation + response).
    pub fn record_append(&mut self, by: ProcessId, block: BlockId, invoked: Time, responded: Time) {
        self.history.push_complete(
            by,
            Invocation::Append { block },
            invoked,
            Response::Appended(true),
            responded,
        );
    }

    /// Records a completed `read()` operation.
    pub fn record_read(
        &mut self,
        by: ProcessId,
        chain: Blockchain,
        invoked: Time,
        responded: Time,
    ) {
        self.history.push_complete(
            by,
            Invocation::Read,
            invoked,
            Response::Chain(chain),
            responded,
        );
    }

    /// Iterates all `update` events.
    pub fn updates(&self) -> impl Iterator<Item = (Time, ProcessId, BlockId, BlockId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Update {
                at,
                by,
                parent,
                block,
            } => Some((*at, *by, *parent, *block)),
            _ => None,
        })
    }

    /// Iterates all `send` events.
    pub fn sends(&self) -> impl Iterator<Item = (Time, ProcessId, BlockId, BlockId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Send {
                at,
                by,
                parent,
                block,
            } => Some((*at, *by, *parent, *block)),
            _ => None,
        })
    }

    /// Iterates all `receive` events as `(at, by, parent, block)`.
    pub fn receives(&self) -> impl Iterator<Item = (Time, ProcessId, BlockId, BlockId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Receive {
                at,
                by,
                parent,
                block,
                ..
            } => Some((*at, *by, *parent, *block)),
            _ => None,
        })
    }

    /// Def. 4.2: restrict the trace to the admissible event set —
    /// (i)/(ii) `read()` operations at *correct* processes, (iii) **all**
    /// `append(b)` invocations whose block satisfies `P` (a valid block
    /// "can be decided even if sent by a faulty process", so Byzantine
    /// appends stay), and (iv) send/receive/update events at correct
    /// processes.
    pub fn restrict_correct(&self, correct: &[bool]) -> Trace {
        let is_correct = |p: ProcessId| correct.get(p.index()).copied().unwrap_or(false);
        let mut out = Trace::new();
        for e in &self.events {
            if is_correct(e.by()) {
                out.events.push(e.clone());
            }
        }
        for op in self.history.ops() {
            let keep = match op.invocation {
                // (iii): append invocations survive regardless of who
                // issued them — and a propose is an append attempt (its
                // winning mint is the appended block), so it survives too.
                Invocation::Append { .. } | Invocation::Propose { .. } => true,
                Invocation::Read => is_correct(op.process),
            };
            if !keep {
                continue;
            }
            match (&op.response, op.responded_at) {
                (Some(r), Some(t)) => {
                    out.history.push_complete(
                        op.process,
                        op.invocation.clone(),
                        op.invoked_at,
                        r.clone(),
                        t,
                    );
                }
                _ => {
                    out.history
                        .push_invocation(op.process, op.invocation.clone(), op.invoked_at);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_iterate() {
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), BlockId::GENESIS, BlockId(1));
        t.record_receive(
            Time(3),
            ProcessId(1),
            ProcessId(0),
            BlockId::GENESIS,
            BlockId(1),
        );
        t.record_update(Time(3), ProcessId(1), BlockId::GENESIS, BlockId(1));
        assert_eq!(t.sends().count(), 1);
        assert_eq!(t.receives().count(), 1);
        assert_eq!(t.updates().count(), 1);
        let (at, by, parent, block) = t.updates().next().unwrap();
        assert_eq!(
            (at, by, parent, block),
            (Time(3), ProcessId(1), BlockId::GENESIS, BlockId(1))
        );
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Send {
            at: Time(2),
            by: ProcessId(1),
            parent: BlockId::GENESIS,
            block: BlockId(3),
        };
        assert_eq!(format!("{e}"), "[t2] send_p1(b0, b3)");
    }

    #[test]
    fn history_side_records_ops() {
        let mut t = Trace::new();
        t.record_append(ProcessId(0), BlockId(1), Time(1), Time(2));
        t.record_read(ProcessId(1), Blockchain::genesis(), Time(3), Time(4));
        assert_eq!(t.history.append_count(), 1);
        assert_eq!(t.history.reads().count(), 1);
        assert!(t.history.validate().is_empty());
    }

    #[test]
    fn restrict_correct_filters_both_sides() {
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), BlockId::GENESIS, BlockId(1));
        t.record_send(Time(2), ProcessId(1), BlockId::GENESIS, BlockId(2));
        t.record_read(ProcessId(0), Blockchain::genesis(), Time(3), Time(4));
        t.record_read(ProcessId(1), Blockchain::genesis(), Time(3), Time(4));
        let restricted = t.restrict_correct(&[true, false]);
        assert_eq!(restricted.events.len(), 1);
        assert_eq!(restricted.history.reads().count(), 1);
        assert_eq!(restricted.events[0].by(), ProcessId(0));
    }
}
