//! Multi-threaded workload runner: real OS threads racing on a
//! [`ConcurrentBlockTree`], recording a timestamped [`History`].
//!
//! The discrete-event simulator (`crate::world`) *schedules* concurrency;
//! this module *executes* it — N appender threads and M reader threads
//! hammer one shared tree, and every operation is recorded with
//! invocation/response stamps drawn from a shared atomic counter. That
//! counter realizes the paper's *fictional global clock* (§4.2): each
//! `fetch_add` is a point in the clock's modification order, the response
//! stamp is taken after the operation's effect and the invocation stamp
//! before it, so whenever operation A's response *really* precedes
//! operation B's invocation, `stamp(A.resp) < stamp(B.inv)` — the recorded
//! returns-before order `≺` is a sound sub-order of real time. (The
//! `AcqRel` ordering on the counter also makes each stamp a
//! synchronization edge, so the recorded values themselves are coherent.)
//!
//! The recorded history is then *checked from the outside*: fed to
//! `check_linearizable` / `check_linearizable_windowed`, to the
//! consistency criteria (Local Monotonic Read et al.), or replayed
//! differentially — the checker is the oracle, not an assertion of intent
//! inside the implementation.
//!
//! Workloads run in `rounds` separated by a barrier: within a round all
//! threads race freely; between rounds the system is quiescent. That gives
//! long runs guaranteed quiescent points, which is exactly the structure
//! `History::split_at_quiescence` and the windowed checker exploit.
//! Optionally each append first asks a shared Θ-oracle for a token
//! (Protocol-A style, §4.1): the oracle object is its own linearization
//! point, exercised here under genuine thread interleavings.

use btadt_core::blocktree::CandidateBlock;
use btadt_core::chain::Blockchain;
use btadt_core::concurrent::ConcurrentBlockTree;
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Shape of a multi-threaded recorded run.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Seeds work weights, nonces, and reader pacing (the *workload* is
    /// deterministic; the interleaving is whatever the scheduler does).
    pub seed: u64,
    /// Appender threads (processes `p0 .. p(appenders-1)`).
    pub appenders: usize,
    /// Reader threads (processes `p(appenders) ..`).
    pub readers: usize,
    /// Appends per appender per round.
    pub appends_per_round: usize,
    /// Reads per reader per round.
    pub reads_per_round: usize,
    /// Barrier-separated rounds; the inter-round instants are quiescent.
    pub rounds: usize,
    /// When true, every append first obtains a token from a shared
    /// prodigal Θ-oracle for the tip it is about to mine on.
    pub mine: bool,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            seed: 0,
            appenders: 2,
            readers: 2,
            appends_per_round: 3,
            reads_per_round: 4,
            rounds: 1,
            mine: false,
        }
    }
}

/// Everything a checker needs from one recorded run.
pub struct MtRun {
    /// The recorded concurrent history (append + read operations).
    pub history: History,
    /// Sequential snapshot of the arena (identical ids/digests), taken
    /// after all threads joined.
    pub store: BlockStore,
    /// Membership commit order of the run.
    pub commit_log: Vec<BlockId>,
    /// The tree's final published chain.
    pub final_chain: Blockchain,
    /// Successful appends across all threads.
    pub appended: usize,
}

/// One thread's private log entry, merged into the [`History`] after join.
type LoggedOp = (ProcessId, Invocation, Time, Response, Time);

/// Drives `cfg` against a fresh `ConcurrentBlockTree<F, AcceptAll>` and
/// records the history. The run is linearizable by construction of the
/// tree — the point is that the *recorded evidence* is checked by the
/// Wing–Gong search, not assumed.
pub fn run_concurrent_workload<F: SelectionFn>(selection: F, cfg: &MtConfig) -> MtRun {
    let tree = ConcurrentBlockTree::new(selection, AcceptAll);
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(cfg.appenders + cfg.readers);
    let oracle = cfg.mine.then(|| {
        let merits = Merits::uniform(cfg.appenders.max(1));
        SharedOracle::new(ThetaOracle::prodigal(
            merits,
            cfg.appenders.max(1) as f64,
            cfg.seed,
        ))
    });

    let tick = |clock: &AtomicU64| Time(clock.fetch_add(1, Ordering::AcqRel) + 1);

    let mut logs: Vec<Vec<LoggedOp>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for a in 0..cfg.appenders {
            let (tree, clock, barrier, oracle) = (&tree, &clock, &barrier, &oracle);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId(a as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.appends_per_round {
                        let step = (round * cfg.appends_per_round + i) as u64;
                        if let Some(oracle) = oracle {
                            // Protocol-A flavour: win a token for the tip
                            // you are about to mine on (Θ_P always grants).
                            let grant = loop {
                                let tip = tree.selected_tip();
                                if let Some(g) = oracle.get_token(a, tip) {
                                    break g;
                                }
                            };
                            let _ = grant;
                        }
                        let nonce = ((a as u64) << 40) | step;
                        let work = 1 + splitmix64_at(cfg.seed ^ ((a as u64) << 16), step) % 4;
                        let cand = CandidateBlock::simple(me, nonce).with_work(work);
                        let t0 = tick(clock);
                        let id = tree.append(cand);
                        let t1 = tick(clock);
                        let id = id.expect("AcceptAll appends always succeed");
                        log.push((
                            me,
                            Invocation::Append { block: id },
                            t0,
                            Response::Appended(true),
                            t1,
                        ));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for r in 0..cfg.readers {
            let (tree, clock, barrier) = (&tree, &clock, &barrier);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId((cfg.appenders + r) as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.reads_per_round {
                        let step = (round * cfg.reads_per_round + i) as u64;
                        // Seeded pacing: sometimes yield so reads land in
                        // different phases of the appenders' work.
                        if splitmix64_at(cfg.seed ^ 0x5EAD, ((r as u64) << 24) | step)
                            .is_multiple_of(3)
                        {
                            std::thread::yield_now();
                        }
                        let t0 = tick(clock);
                        let chain = tree.read();
                        let t1 = tick(clock);
                        log.push((me, Invocation::Read, t0, Response::Chain(chain), t1));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for h in handles {
            logs.push(h.join().expect("workload threads do not panic"));
        }
    });

    let mut merged: Vec<LoggedOp> = logs.into_iter().flatten().collect();
    // Deterministic recording order (the history's semantics only depend
    // on timestamps, but stable op ids make failures reproducible to read).
    merged.sort_by_key(|(_, _, t0, _, _)| *t0);
    let mut history = History::new();
    let mut appended = 0;
    for (p, inv, t0, resp, t1) in merged {
        if matches!(resp, Response::Appended(true)) {
            appended += 1;
        }
        history.push_complete(p, inv, t0, resp, t1);
    }

    MtRun {
        store: tree.snapshot_store(),
        commit_log: tree.commit_log(),
        final_chain: tree.read(),
        history,
        appended,
    }
}
