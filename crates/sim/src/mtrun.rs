//! Multi-threaded workload runner: real OS threads racing on a
//! [`ConcurrentBlockTree`], recording a timestamped [`History`].
//!
//! The discrete-event simulator (`crate::world`) *schedules* concurrency;
//! this module *executes* it — N appender threads and M reader threads
//! hammer one shared tree, and every operation is recorded with
//! invocation/response stamps drawn from a shared atomic counter. That
//! counter realizes the paper's *fictional global clock* (§4.2): each
//! `fetch_add` is a point in the clock's modification order, the response
//! stamp is taken after the operation's effect and the invocation stamp
//! before it, so whenever operation A's response *really* precedes
//! operation B's invocation, `stamp(A.resp) < stamp(B.inv)` — the recorded
//! returns-before order `≺` is a sound sub-order of real time. (The
//! `AcqRel` ordering on the counter also makes each stamp a
//! synchronization edge, so the recorded values themselves are coherent.)
//!
//! The recorded history is then *checked from the outside*: fed to
//! `check_linearizable` / `check_linearizable_windowed`, to the
//! consistency criteria (Local Monotonic Read et al.), or replayed
//! differentially — the checker is the oracle, not an assertion of intent
//! inside the implementation. The same suites ran unchanged across the
//! move to the staged commit pipeline: batching is invisible to the
//! recorded evidence, which is the point.
//!
//! Workloads run in `rounds` separated by a barrier: within a round all
//! threads race freely; between rounds the system is quiescent. That gives
//! long runs guaranteed quiescent points, which is exactly the structure
//! `History::split_at_quiescence` and the windowed checker exploit.
//!
//! # Mining gates
//!
//! Optionally each append first consults a shared Θ-oracle (§4.1):
//!
//! * **Prodigal** (`mine: true`): every append wins a Θ_P token for the
//!   tip it is about to mine on — pure validation, no fork control.
//! * **Frugal** (`frugal_k: Some(k)`): the Protocol-A shape. The appender
//!   `getToken`s for its intended parent, mints the block into the arena
//!   (not yet a member), and `consumeToken`s it. If the oracle admitted
//!   the block into `K[parent]`, the mint is committed via
//!   `graft_minted`; if `K[parent]` was already full, the returned set
//!   *feeds back*: the appender adopts one of the winners as its next
//!   graft parent and retries — k-fork coherence enforced by the oracle,
//!   convergence driven by the feedback.

use btadt_core::blocktree::CandidateBlock;
use btadt_core::chain::Blockchain;
use btadt_core::commit::{FinalityWatermark, PipelineStats};
use btadt_core::concurrent::ConcurrentBlockTree;
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;
use btadt_core::vfs::{FaultConfig, FaultVfs};
use btadt_core::wal::{DurabilityError, WalConfig, WalStats};
use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use btadt_registers::{TreeConsensus, TreeConsensusReport};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Shape of a multi-threaded recorded run.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Seeds work weights, nonces, and reader pacing (the *workload* is
    /// deterministic; the interleaving is whatever the scheduler does).
    pub seed: u64,
    /// Appender threads (processes `p0 .. p(appenders-1)`).
    pub appenders: usize,
    /// Reader threads (processes `p(appenders) ..`).
    pub readers: usize,
    /// Appends per appender per round.
    pub appends_per_round: usize,
    /// Reads per reader per round.
    pub reads_per_round: usize,
    /// Barrier-separated rounds; the inter-round instants are quiescent.
    pub rounds: usize,
    /// When true, every append first obtains a token from a shared
    /// prodigal Θ-oracle for the tip it is about to mine on.
    pub mine: bool,
    /// When `Some(k)`, appends gate through a shared *frugal* Θ_F,k
    /// oracle with consumeToken feedback into graft parents (see the
    /// module docs). Takes precedence over `mine`.
    pub frugal_k: Option<u32>,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            seed: 0,
            appenders: 2,
            readers: 2,
            appends_per_round: 3,
            reads_per_round: 4,
            rounds: 1,
            mine: false,
            frugal_k: None,
        }
    }
}

/// Everything a checker needs from one recorded run.
pub struct MtRun {
    /// The recorded concurrent history (append + read operations).
    pub history: History,
    /// Sequential snapshot of the arena (identical ids/digests), taken
    /// after all threads joined.
    pub store: BlockStore,
    /// Membership commit order of the run.
    pub commit_log: Vec<BlockId>,
    /// The tree's final published chain.
    pub final_chain: Blockchain,
    /// Successful appends across all threads.
    pub appended: usize,
    /// Thm. 3.2 k-fork coherence of the shared oracle, when one gated the
    /// run (`None` for un-mined workloads).
    pub fork_coherent: Option<bool>,
    /// Commit-pipeline counters at the end of the run: how the appends
    /// split across the inline and queued paths, and how long the two
    /// pipeline stages held their locks (`drain_lock_ns` / `score_ns` /
    /// `publish_ns`).
    pub pipeline: PipelineStats,
}

/// One thread's private log entry, merged into the [`History`] after join.
type LoggedOp = (ProcessId, Invocation, Time, Response, Time);

/// A sense-reversing barrier tuned for time-sliced cores: arrivals spin
/// with `yield_now` for a bounded number of slices before parking on a
/// condvar. `std::sync::Barrier` parks (futex) on every arrival, which
/// costs a park+wake context-switch pair per thread per round — at 10
/// threads that alone capped the consensus workload near 75k rounds/s on
/// a one-core container, dwarfing the decide path under measurement.
/// Yield-first arrival turns most of those into cheap voluntary switches
/// (the last arriver flips the generation; spinners notice on their next
/// slice), while the condvar fallback keeps long waits off the CPU.
struct YieldBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    n: usize,
    lock: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl YieldBarrier {
    fn new(n: usize) -> Self {
        YieldBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            n: n.max(1),
            lock: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Reset the count *before* flipping the generation: the next
            // round's arrivals increment only after observing the new
            // generation (Release/Acquire on `generation`), so they see
            // the reset.
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            // Lock-then-notify pairs with the recheck-under-lock below.
            drop(self.lock.lock().expect("barrier lock"));
            self.cv.notify_all();
            return;
        }
        let mut spins = 0u32;
        loop {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            spins += 1;
            if spins < 1024 {
                std::thread::yield_now();
            } else {
                let mut guard = self.lock.lock().expect("barrier lock");
                loop {
                    if self.generation.load(Ordering::Acquire) != gen {
                        return;
                    }
                    // The timeout is a belt-and-braces net against a
                    // notify racing the lock acquisition; correctness
                    // only needs the generation recheck.
                    let (g, _) = self
                        .cv
                        .wait_timeout(guard, std::time::Duration::from_millis(1))
                        .expect("barrier lock");
                    guard = g;
                }
            }
        }
    }
}

/// A wedged frugal run (merit tape never granting, or an admitted
/// winner's committer dying before its graft) fails loudly after this
/// long instead of spinning silently until the CI timeout kills it.
const FRUGAL_STALL_LIMIT: std::time::Duration = std::time::Duration::from_secs(20);

/// One frugal (Θ_F,k) append: getToken for the intended parent, mint into
/// the arena, consumeToken; commit the mint if admitted, otherwise adopt
/// a winner from the returned `K[parent]` as the next parent and retry.
/// Returns the committed id.
///
/// # Panics
///
/// When the run wedges past [`FRUGAL_STALL_LIMIT`]: either the oracle
/// stops granting tokens (the retry loop would otherwise spin forever),
/// or an admitted winner's parent never commits — e.g. the thread that
/// owned the winning mint panicked before grafting it, orphaning everyone
/// who adopted it through feedback.
fn frugal_append<F: SelectionFn>(
    tree: &ConcurrentBlockTree<F, AcceptAll>,
    oracle: &SharedOracle,
    merit_index: usize,
    work: u64,
    nonce: u64,
    seed: u64,
    step: u64,
) -> BlockId {
    let me = ProcessId(merit_index as u32);
    let deadline = std::time::Instant::now() + FRUGAL_STALL_LIMIT;
    // Backoff ladder for token-less retries: yield for the first few
    // denials (a solo appender's tape is its only wake source), then
    // park on the tree's commit generation — a commit means the tip
    // moved, which is exactly when re-aiming is worth another tape cell
    // — with a timeout so a round where *every* tape said ⊥ still makes
    // progress.
    const TOKEN_YIELDS: u64 = 4;
    const TOKEN_BACKOFF: std::time::Duration = std::time::Duration::from_micros(200);
    let mut parent = tree.selected_tip();
    let mut attempt = 0u64;
    let mut denied = 0u64;
    loop {
        let Some(grant) = oracle.get_token(merit_index, parent) else {
            // The merit tape said no this round: re-aim at the (possibly
            // moved) published tip and try again.
            assert!(
                std::time::Instant::now() < deadline,
                "frugal_append wedged: p{merit_index} got no token for \
                 {parent} after {attempt} attempts ({FRUGAL_STALL_LIMIT:?})"
            );
            denied += 1;
            let gen = tree.commit_generation();
            let next = tree.selected_tip();
            if next != parent || denied <= TOKEN_YIELDS {
                std::thread::yield_now();
            } else {
                // Tip unchanged and the tape keeps saying no: park until
                // a commit lands (or the backoff elapses) instead of
                // burning the committer's time slice in a spin.
                tree.wait_commit_past(gen, std::time::Instant::now() + TOKEN_BACKOFF);
            }
            parent = tree.selected_tip();
            attempt += 1;
            continue;
        };
        // Mint under the granted parent — into the arena only; membership
        // is the oracle's call.
        let id = tree.store().mint(
            parent,
            me,
            merit_index as u32,
            work,
            nonce ^ (attempt << 44),
            btadt_core::block::Payload::Empty,
        );
        let admitted = oracle.consume_token(&grant, id);
        if admitted.contains(&id) {
            // Our mint joined K[parent]. Its parent may have been a
            // feedback winner whose own committer has not grafted yet —
            // wait for parent-closure, then commit.
            assert!(
                tree.wait_committed(parent, deadline),
                "frugal_append wedged: p{merit_index}'s admitted mint \
                 {id} waited {FRUGAL_STALL_LIMIT:?} for parent {parent} \
                 to commit — its owner likely died before grafting"
            );
            return tree
                .graft_minted(id)
                .expect("volatile trees cannot poison")
                .expect("AcceptAll admits every oracle-approved block");
        }
        // K[parent] is full: the feedback step. Adopt one of the winners
        // as the next graft parent (the mint stays an arena orphan).
        assert!(
            std::time::Instant::now() < deadline,
            "frugal_append wedged: p{merit_index} lost the K-slot race \
             {attempt} times without admission ({FRUGAL_STALL_LIMIT:?})"
        );
        let r = splitmix64_at(seed ^ 0xF2C6_A1D3, (step << 8) | (attempt & 0xFF));
        parent = admitted[(r as usize) % admitted.len()];
        attempt += 1;
    }
}

/// Drives `cfg` against a fresh `ConcurrentBlockTree<F, AcceptAll>` and
/// records the history. The run is linearizable by construction of the
/// tree — the point is that the *recorded evidence* is checked by the
/// Wing–Gong search, not assumed.
pub fn run_concurrent_workload<F: SelectionFn>(selection: F, cfg: &MtConfig) -> MtRun {
    let tree = ConcurrentBlockTree::new(selection, AcceptAll);
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(cfg.appenders + cfg.readers);
    let oracle = if let Some(k) = cfg.frugal_k {
        let merits = Merits::uniform(cfg.appenders.max(1));
        Some(SharedOracle::new(ThetaOracle::frugal(
            k,
            merits,
            cfg.appenders.max(1) as f64,
            cfg.seed,
        )))
    } else if cfg.mine {
        let merits = Merits::uniform(cfg.appenders.max(1));
        Some(SharedOracle::new(ThetaOracle::prodigal(
            merits,
            cfg.appenders.max(1) as f64,
            cfg.seed,
        )))
    } else {
        None
    };

    let tick = |clock: &AtomicU64| Time(clock.fetch_add(1, Ordering::AcqRel) + 1);

    let mut logs: Vec<Vec<LoggedOp>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for a in 0..cfg.appenders {
            let (tree, clock, barrier, oracle) = (&tree, &clock, &barrier, &oracle);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId(a as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.appends_per_round {
                        let step = (round * cfg.appends_per_round + i) as u64;
                        let nonce = ((a as u64) << 40) | step;
                        let work = 1 + splitmix64_at(cfg.seed ^ ((a as u64) << 16), step) % 4;
                        let (t0, id, t1) = if cfg.frugal_k.is_some() {
                            // Θ_F gate: the whole getToken*→consumeToken→
                            // graft sequence is the refined append
                            // (Def. 3.7) — one recorded operation.
                            let oracle = oracle.as_ref().expect("frugal_k implies an oracle");
                            let t0 = tick(clock);
                            let id = frugal_append(tree, oracle, a, work, nonce, cfg.seed, step);
                            (t0, id, tick(clock))
                        } else {
                            if let Some(oracle) = oracle {
                                // Protocol-A flavour: win a token for the tip
                                // you are about to mine on (Θ_P always grants).
                                let grant = loop {
                                    let tip = tree.selected_tip();
                                    if let Some(g) = oracle.get_token(a, tip) {
                                        break g;
                                    }
                                };
                                let _ = grant;
                            }
                            let cand = CandidateBlock::simple(me, nonce).with_work(work);
                            let t0 = tick(clock);
                            let id = tree.append(cand).expect("volatile trees cannot poison");
                            let t1 = tick(clock);
                            (t0, id.expect("AcceptAll appends always succeed"), t1)
                        };
                        log.push((
                            me,
                            Invocation::Append { block: id },
                            t0,
                            Response::Appended(true),
                            t1,
                        ));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for r in 0..cfg.readers {
            let (tree, clock, barrier) = (&tree, &clock, &barrier);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId((cfg.appenders + r) as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.reads_per_round {
                        let step = (round * cfg.reads_per_round + i) as u64;
                        // Seeded pacing: sometimes yield so reads land in
                        // different phases of the appenders' work.
                        if splitmix64_at(cfg.seed ^ 0x5EAD, ((r as u64) << 24) | step)
                            .is_multiple_of(3)
                        {
                            std::thread::yield_now();
                        }
                        let t0 = tick(clock);
                        let chain = tree.read_owned();
                        let t1 = tick(clock);
                        log.push((me, Invocation::Read, t0, Response::Chain(chain), t1));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for h in handles {
            logs.push(h.join().expect("workload threads do not panic"));
        }
    });

    let mut merged: Vec<LoggedOp> = logs.into_iter().flatten().collect();
    // Deterministic recording order (the history's semantics only depend
    // on timestamps, but stable op ids make failures reproducible to read).
    merged.sort_by_key(|(_, _, t0, _, _)| *t0);
    let mut history = History::new();
    let mut appended = 0;
    for (p, inv, t0, resp, t1) in merged {
        if matches!(resp, Response::Appended(true)) {
            appended += 1;
        }
        history.push_complete(p, inv, t0, resp, t1);
    }

    MtRun {
        store: tree.snapshot_store(),
        commit_log: tree.commit_log(),
        final_chain: tree.read_owned(),
        history,
        appended,
        fork_coherent: oracle.as_ref().map(|o| o.fork_coherent()),
        pipeline: tree.pipeline_stats(),
    }
}

/// Everything a checker needs from one fault-injected durable run (see
/// [`run_durable_fault_workload`]).
pub struct FaultRun {
    /// Ids whose append returned `Ok(Some(_))`, across all threads. Each
    /// is provably covered by a pre-poisoning publication
    /// (persist-then-ack), so after any crash + recovery every one of
    /// them must be in the recovered commit log.
    pub acked: Vec<BlockId>,
    /// Appends attempted across all threads.
    pub attempts: usize,
    /// The first [`DurabilityError`] any thread observed, if the fault
    /// schedule fired.
    pub error: Option<DurabilityError>,
    /// Whether the tree ended the run poisoned (degraded read-only).
    pub poisoned: bool,
    /// WAL counters at the end of the run (retries, failures,
    /// `last_error`) — the observability satellite's surface.
    pub stats: WalStats,
}

/// Geometry shared by the fault workload and [`recover_durable`]: small
/// segments and a short checkpoint interval keep rotation and
/// compaction inside the fault schedule's reach.
fn fault_wal_config(wal_dir: &str, vfs: &FaultVfs) -> WalConfig {
    WalConfig::new(wal_dir)
        .segment_bytes(2048)
        .checkpoint_interval(8)
        .vfs(vfs.as_dyn())
}

/// Drives `cfg`'s appender/reader threads against a **durable** tree
/// whose storage is a [`FaultVfs`] running `fault` — the multithreaded
/// degraded-mode check. Appends tolerate [`DurabilityError`]; each
/// thread asserts the poisoning discipline locally (once it has seen an
/// error, no later append of its own may ack — the poison flag is
/// latched before any `Err` returns). The tree is dropped before
/// returning; the caller owns the `FaultVfs` and typically follows with
/// [`FaultVfs::power_loss`] + [`recover_durable`] to check
/// `acked ⊆ recovered`.
pub fn run_durable_fault_workload<F: SelectionFn>(
    selection: F,
    cfg: &MtConfig,
    wal_dir: &str,
    fault: FaultConfig,
) -> (FaultRun, FaultVfs) {
    let vfs = FaultVfs::new(fault);
    let tree = ConcurrentBlockTree::open_durable(
        4,
        FinalityWatermark::new(2),
        selection,
        AcceptAll,
        fault_wal_config(wal_dir, &vfs),
    )
    .expect("fault schedules target the workload, not the fresh open");
    let barrier = Barrier::new(cfg.appenders + cfg.readers);

    type Lane = (Vec<BlockId>, usize, Option<DurabilityError>);
    let mut lanes: Vec<Lane> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for a in 0..cfg.appenders {
            let (tree, barrier) = (&tree, &barrier);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId(a as u32);
                let mut acked = Vec::new();
                let mut attempts = 0usize;
                let mut first_err: Option<DurabilityError> = None;
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.appends_per_round {
                        let step = (round * cfg.appends_per_round + i) as u64;
                        let nonce = ((a as u64) << 40) | step;
                        let work = 1 + splitmix64_at(cfg.seed ^ ((a as u64) << 16), step) % 4;
                        let cand = CandidateBlock::simple(me, nonce).with_work(work);
                        attempts += 1;
                        match tree.append(cand) {
                            Ok(Some(id)) => {
                                assert!(
                                    first_err.is_none(),
                                    "p{a} acked {id} after durability error {first_err:?}"
                                );
                                acked.push(id);
                            }
                            Ok(None) => panic!("AcceptAll rejects nothing"),
                            Err(e) => {
                                assert!(
                                    tree.is_poisoned(),
                                    "p{a} got {e:?} from an unpoisoned tree"
                                );
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
                (acked, attempts, first_err)
            }));
        }
        for _r in 0..cfg.readers {
            let (tree, barrier) = (&tree, &barrier);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                // Readers race the degrading tree: `read()` stays valid
                // (the published chain is always fsync-covered) before,
                // during, and after poisoning — and selection score is
                // monotone across publications, so with `LongestChain`
                // the observed length never shrinks.
                let mut last_len = 0usize;
                for _ in 0..cfg.rounds {
                    barrier.wait();
                    for _ in 0..cfg.reads_per_round {
                        let chain = tree.read_owned();
                        assert!(
                            chain.len() >= last_len,
                            "published chain regressed under faults"
                        );
                        last_len = chain.len();
                    }
                }
                (Vec::new(), 0, None)
            }));
        }
        for h in handles {
            lanes.push(h.join().expect("fault-workload threads do not panic"));
        }
    });

    let poisoned = tree.is_poisoned();
    let tree_err = tree.durability_error();
    let stats = tree.wal_stats().expect("durable tree has stats");
    drop(tree);
    let mut acked = Vec::new();
    let mut attempts = 0;
    let mut error = None;
    for (ids, n, err) in lanes {
        acked.extend(ids);
        attempts += n;
        if error.is_none() {
            error = err;
        }
    }
    // Any thread-observed error implies (and matches) the latched one.
    if let Some(e) = error {
        assert_eq!(tree_err, Some(e), "latched error diverged from observed");
    }
    (
        FaultRun {
            acked,
            attempts,
            error,
            poisoned,
            stats,
        },
        vfs,
    )
}

/// Re-opens the durable tree a [`run_durable_fault_workload`] left
/// behind (typically after [`FaultVfs::power_loss`]), with the same WAL
/// geometry.
pub fn recover_durable<F: SelectionFn>(
    selection: F,
    wal_dir: &str,
    vfs: &FaultVfs,
) -> std::io::Result<ConcurrentBlockTree<F, AcceptAll>> {
    ConcurrentBlockTree::open_durable(
        4,
        FinalityWatermark::new(2),
        selection,
        AcceptAll,
        fault_wal_config(wal_dir, vfs),
    )
}

/// Shape of a multi-threaded *consensus* run: `rounds` chained Protocol-A
/// instances (`TreeConsensus`) over one shared
/// `ConcurrentBlockTree` + Θ_F,k=1 pair, with reader threads racing
/// `read()` against the decide path.
///
/// Round `r + 1` is anchored at round `r`'s decision as proposer 0 — the
/// thread that installs each round's instance — observed it. Agreement
/// makes that choice identical to what every other proposer decided; the
/// per-round Def. 4.1 reports and the e2e suite's anchor-chaining
/// assertions are what verify that, from the recorded evidence.
#[derive(Clone, Debug)]
pub struct ConsensusConfig {
    /// Seeds the oracle tapes, work weights, and reader pacing.
    pub seed: u64,
    /// Proposer threads (merit indices `0 .. proposers`).
    pub proposers: usize,
    /// Reader threads.
    pub readers: usize,
    /// Consensus instances, chained anchor-to-decision.
    pub rounds: usize,
    /// Reads per reader per round.
    pub reads_per_round: usize,
    /// Token rate across the uniform merit vector; `None` = 0.8 per
    /// proposer per attempt (the `btadt-registers` test default).
    pub rate: Option<f64>,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            seed: 0,
            proposers: 3,
            readers: 2,
            rounds: 2,
            reads_per_round: 4,
            rate: None,
        }
    }
}

/// Everything a checker needs from one recorded consensus run.
pub struct ConsensusRun {
    /// The recorded history: one `Propose`/`Decided` operation per
    /// proposer per round, plus the readers' `Read`/`Chain` operations.
    pub history: History,
    /// Sequential snapshot of the arena (winners and orphaned loser
    /// mints alike), taken after all threads joined.
    pub store: BlockStore,
    /// Membership commit order — one graft per round.
    pub commit_log: Vec<BlockId>,
    /// The tree's final published chain.
    pub final_chain: Blockchain,
    /// Per-round Def. 4.1 evidence, in round order.
    pub reports: Vec<TreeConsensusReport>,
    /// The decisions in round order (the decided path `b0⌢d1⌢d2⌢…`).
    pub decisions: Vec<BlockId>,
    /// Thm. 3.2 k-fork coherence of the shared oracle after the run.
    pub fork_coherent: bool,
    /// Wall clock of the threaded phase only (spawn → join): the decide
    /// path plus reads, *excluding* post-join evidence assembly (arena
    /// snapshot, log merge, history construction) — what a throughput
    /// number should divide by.
    pub threads_wall: std::time::Duration,
    /// Commit-pipeline counters at the end of the run (inline/queued
    /// split and the two-stage lock timings).
    pub pipeline: PipelineStats,
}

/// Drives `cfg` against a fresh `ConcurrentBlockTree<F, AcceptAll>` +
/// Θ_F,k=1 pair: every round, proposer 0 installs a fresh
/// [`TreeConsensus`] anchored at the previous decision (the slot's write
/// lock waits out stragglers; the round's single barrier — which the
/// installer reaches only after the install — keeps the slot unread
/// until then, so the install is race-free and the inter-round instants
/// stay quiescent), then all proposers race `propose` while the readers
/// hammer `read()`. Both the decide events and the reads are stamped on
/// the shared global clock and folded into one [`History`] — the
/// evidence the Wing–Gong/windowed checkers judge.
pub fn run_consensus_workload<F: SelectionFn>(selection: F, cfg: &ConsensusConfig) -> ConsensusRun {
    assert!(cfg.proposers >= 1, "consensus needs at least one proposer");
    let tree = ConcurrentBlockTree::new(selection, AcceptAll);
    // An explicit zero/negative rate is honored, not clamped: it drives
    // the decide path's wedge diagnostic (propose panics after its stall
    // limit), which is exactly what such a config is for.
    let rate = cfg.rate.unwrap_or(0.8 * cfg.proposers as f64);
    let oracle = SharedOracle::new(ThetaOracle::frugal(
        1,
        Merits::uniform(cfg.proposers),
        rate,
        cfg.seed,
    ));
    let clock = AtomicU64::new(0);
    let barrier = YieldBarrier::new(cfg.proposers + cfg.readers);
    // The per-round instances, append-only and indexed by round number.
    // Proposer 0 pushes round r's instance *before* arriving at round
    // r's barrier, so by the time the barrier releases anyone into round
    // r the slot exists — and because installs never overwrite an
    // earlier slot, a straggler released from the barrier late (not yet
    // holding its read guard) still indexes its own round's instance,
    // never a newer one. One barrier per round, not two: with 10 threads
    // on a time-sliced core a second barrier's context-switch volley was
    // a large fixed tax on every decision. The inter-round instants stay
    // quiescent — every thread must arrive (finish its round) before any
    // next-round operation is invoked.
    let instances: std::sync::RwLock<Vec<TreeConsensus<'_, F, AcceptAll>>> =
        std::sync::RwLock::new(Vec::with_capacity(cfg.rounds));

    let tick = |clock: &AtomicU64| Time(clock.fetch_add(1, Ordering::AcqRel) + 1);

    type ProposerLog = (Vec<LoggedOp>, Vec<btadt_registers::ProposeOutcome>);
    let mut proposer_logs: Vec<ProposerLog> = Vec::new();
    let mut reader_logs: Vec<Vec<LoggedOp>> = Vec::new();
    let threads_started = std::time::Instant::now();
    std::thread::scope(|s| {
        let mut proposers = Vec::new();
        let mut readers = Vec::new();
        for p in 0..cfg.proposers {
            let (tree, oracle, clock, barrier, instances) =
                (&tree, &oracle, &clock, &barrier, &instances);
            let cfg = cfg.clone();
            proposers.push(s.spawn(move || {
                let me = ProcessId(p as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                let mut outcomes = Vec::new();
                let mut anchor = BlockId::GENESIS;
                for round in 0..cfg.rounds {
                    if p == 0 {
                        // The push waits out any straggler still holding
                        // a read guard on an earlier round's propose.
                        instances
                            .write()
                            .expect("slot lock")
                            .push(TreeConsensus::new(tree, oracle, anchor));
                    }
                    barrier.wait();
                    let nonce = ((p as u64) << 40) | round as u64;
                    let work = 1 + splitmix64_at(cfg.seed ^ ((p as u64) << 16), round as u64) % 4;
                    let cand = CandidateBlock::simple(me, nonce).with_work(work);
                    let guard = instances.read().expect("slot lock");
                    let cons = &guard[round];
                    let t0 = tick(clock);
                    let out = cons.propose(p, cand).expect("volatile trees cannot poison");
                    let t1 = tick(clock);
                    drop(guard);
                    log.push((
                        me,
                        Invocation::Propose { nonce },
                        t0,
                        Response::Decided {
                            block: out.decided,
                            grafted: out.grafted,
                        },
                        t1,
                    ));
                    outcomes.push(out);
                    if p == 0 {
                        // Only the installer's local decision picks the
                        // next anchor; Agreement (checked by the reports)
                        // makes it everyone's decision.
                        anchor = out.decided;
                    }
                }
                (log, outcomes)
            }));
        }
        for r in 0..cfg.readers {
            let (tree, clock, barrier) = (&tree, &clock, &barrier);
            let cfg = cfg.clone();
            readers.push(s.spawn(move || {
                let me = ProcessId((cfg.proposers + r) as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.reads_per_round {
                        let step = (round * cfg.reads_per_round + i) as u64;
                        // Seeded pacing: occasionally yield so reads land
                        // in different phases of the decide path. ~1/8 of
                        // reads (not 1/3 as in the append workload): the
                        // consensus rounds are short, and every reader
                        // yield costs a full rotation through the barrier
                        // spinners on a time-sliced core — at 1/3 the
                        // pacing tax, not the decide path, dominated the
                        // contended bench rows.
                        if splitmix64_at(cfg.seed ^ 0xC05EAD, ((r as u64) << 24) | step)
                            .is_multiple_of(8)
                        {
                            std::thread::yield_now();
                        }
                        let t0 = tick(clock);
                        let chain = tree.read_owned();
                        let t1 = tick(clock);
                        log.push((me, Invocation::Read, t0, Response::Chain(chain), t1));
                    }
                }
                log
            }));
        }
        for h in proposers {
            proposer_logs.push(h.join().expect("proposer threads do not panic"));
        }
        for h in readers {
            reader_logs.push(h.join().expect("reader threads do not panic"));
        }
    });
    let threads_wall = threads_started.elapsed();

    // Per-round Def. 4.1 reports, proposer order inside each round.
    let mut reports = Vec::with_capacity(cfg.rounds);
    let mut decisions = Vec::with_capacity(cfg.rounds);
    let mut anchor = BlockId::GENESIS;
    for round in 0..cfg.rounds {
        let outcomes: Vec<_> = proposer_logs.iter().map(|(_, o)| o[round]).collect();
        let report = TreeConsensusReport::from_outcomes(anchor, &outcomes);
        if let Some(d) = report.decided() {
            anchor = d;
            decisions.push(d);
        }
        reports.push(report);
    }

    let mut merged: Vec<LoggedOp> = proposer_logs
        .into_iter()
        .flat_map(|(log, _)| log)
        .chain(reader_logs.into_iter().flatten())
        .collect();
    merged.sort_by_key(|(_, _, t0, _, _)| *t0);
    let mut history = History::new();
    for (p, inv, t0, resp, t1) in merged {
        history.push_complete(p, inv, t0, resp, t1);
    }

    ConsensusRun {
        store: tree.snapshot_store(),
        commit_log: tree.commit_log(),
        final_chain: tree.read_owned(),
        history,
        reports,
        decisions,
        fork_coherent: oracle.fork_coherent(),
        threads_wall,
        pipeline: tree.pipeline_stats(),
    }
}
