//! Multi-threaded workload runner: real OS threads racing on a
//! [`ConcurrentBlockTree`], recording a timestamped [`History`].
//!
//! The discrete-event simulator (`crate::world`) *schedules* concurrency;
//! this module *executes* it — N appender threads and M reader threads
//! hammer one shared tree, and every operation is recorded with
//! invocation/response stamps drawn from a shared atomic counter. That
//! counter realizes the paper's *fictional global clock* (§4.2): each
//! `fetch_add` is a point in the clock's modification order, the response
//! stamp is taken after the operation's effect and the invocation stamp
//! before it, so whenever operation A's response *really* precedes
//! operation B's invocation, `stamp(A.resp) < stamp(B.inv)` — the recorded
//! returns-before order `≺` is a sound sub-order of real time. (The
//! `AcqRel` ordering on the counter also makes each stamp a
//! synchronization edge, so the recorded values themselves are coherent.)
//!
//! The recorded history is then *checked from the outside*: fed to
//! `check_linearizable` / `check_linearizable_windowed`, to the
//! consistency criteria (Local Monotonic Read et al.), or replayed
//! differentially — the checker is the oracle, not an assertion of intent
//! inside the implementation. The same suites ran unchanged across the
//! move to the staged commit pipeline: batching is invisible to the
//! recorded evidence, which is the point.
//!
//! Workloads run in `rounds` separated by a barrier: within a round all
//! threads race freely; between rounds the system is quiescent. That gives
//! long runs guaranteed quiescent points, which is exactly the structure
//! `History::split_at_quiescence` and the windowed checker exploit.
//!
//! # Mining gates
//!
//! Optionally each append first consults a shared Θ-oracle (§4.1):
//!
//! * **Prodigal** (`mine: true`): every append wins a Θ_P token for the
//!   tip it is about to mine on — pure validation, no fork control.
//! * **Frugal** (`frugal_k: Some(k)`): the Protocol-A shape. The appender
//!   `getToken`s for its intended parent, mints the block into the arena
//!   (not yet a member), and `consumeToken`s it. If the oracle admitted
//!   the block into `K[parent]`, the mint is committed via
//!   `graft_minted`; if `K[parent]` was already full, the returned set
//!   *feeds back*: the appender adopts one of the winners as its next
//!   graft parent and retries — k-fork coherence enforced by the oracle,
//!   convergence driven by the feedback.

use btadt_core::blocktree::CandidateBlock;
use btadt_core::chain::Blockchain;
use btadt_core::concurrent::ConcurrentBlockTree;
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Shape of a multi-threaded recorded run.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Seeds work weights, nonces, and reader pacing (the *workload* is
    /// deterministic; the interleaving is whatever the scheduler does).
    pub seed: u64,
    /// Appender threads (processes `p0 .. p(appenders-1)`).
    pub appenders: usize,
    /// Reader threads (processes `p(appenders) ..`).
    pub readers: usize,
    /// Appends per appender per round.
    pub appends_per_round: usize,
    /// Reads per reader per round.
    pub reads_per_round: usize,
    /// Barrier-separated rounds; the inter-round instants are quiescent.
    pub rounds: usize,
    /// When true, every append first obtains a token from a shared
    /// prodigal Θ-oracle for the tip it is about to mine on.
    pub mine: bool,
    /// When `Some(k)`, appends gate through a shared *frugal* Θ_F,k
    /// oracle with consumeToken feedback into graft parents (see the
    /// module docs). Takes precedence over `mine`.
    pub frugal_k: Option<u32>,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            seed: 0,
            appenders: 2,
            readers: 2,
            appends_per_round: 3,
            reads_per_round: 4,
            rounds: 1,
            mine: false,
            frugal_k: None,
        }
    }
}

/// Everything a checker needs from one recorded run.
pub struct MtRun {
    /// The recorded concurrent history (append + read operations).
    pub history: History,
    /// Sequential snapshot of the arena (identical ids/digests), taken
    /// after all threads joined.
    pub store: BlockStore,
    /// Membership commit order of the run.
    pub commit_log: Vec<BlockId>,
    /// The tree's final published chain.
    pub final_chain: Blockchain,
    /// Successful appends across all threads.
    pub appended: usize,
    /// Thm. 3.2 k-fork coherence of the shared oracle, when one gated the
    /// run (`None` for un-mined workloads).
    pub fork_coherent: Option<bool>,
}

/// One thread's private log entry, merged into the [`History`] after join.
type LoggedOp = (ProcessId, Invocation, Time, Response, Time);

/// A wedged frugal run (merit tape never granting, or an admitted
/// winner's committer dying before its graft) fails loudly after this
/// long instead of spinning silently until the CI timeout kills it.
const FRUGAL_STALL_LIMIT: std::time::Duration = std::time::Duration::from_secs(20);

/// One frugal (Θ_F,k) append: getToken for the intended parent, mint into
/// the arena, consumeToken; commit the mint if admitted, otherwise adopt
/// a winner from the returned `K[parent]` as the next parent and retry.
/// Returns the committed id.
///
/// # Panics
///
/// When the run wedges past [`FRUGAL_STALL_LIMIT`]: either the oracle
/// stops granting tokens (the retry loop would otherwise spin forever),
/// or an admitted winner's parent never commits — e.g. the thread that
/// owned the winning mint panicked before grafting it, orphaning everyone
/// who adopted it through feedback.
fn frugal_append<F: SelectionFn>(
    tree: &ConcurrentBlockTree<F, AcceptAll>,
    oracle: &SharedOracle,
    merit_index: usize,
    work: u64,
    nonce: u64,
    seed: u64,
    step: u64,
) -> BlockId {
    let me = ProcessId(merit_index as u32);
    let deadline = std::time::Instant::now() + FRUGAL_STALL_LIMIT;
    let mut parent = tree.selected_tip();
    let mut attempt = 0u64;
    loop {
        let Some(grant) = oracle.get_token(merit_index, parent) else {
            // The merit tape said no this round: re-aim at the (possibly
            // moved) published tip and try again.
            assert!(
                std::time::Instant::now() < deadline,
                "frugal_append wedged: p{merit_index} got no token for \
                 {parent} after {attempt} attempts ({FRUGAL_STALL_LIMIT:?})"
            );
            parent = tree.selected_tip();
            attempt += 1;
            continue;
        };
        // Mint under the granted parent — into the arena only; membership
        // is the oracle's call.
        let id = tree.store().mint(
            parent,
            me,
            merit_index as u32,
            work,
            nonce ^ (attempt << 44),
            btadt_core::block::Payload::Empty,
        );
        let admitted = oracle.consume_token(&grant, id);
        if admitted.contains(&id) {
            // Our mint joined K[parent]. Its parent may have been a
            // feedback winner whose own committer has not grafted yet —
            // wait for parent-closure, then commit.
            while !tree.is_committed(parent) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "frugal_append wedged: p{merit_index}'s admitted mint \
                     {id} waited {FRUGAL_STALL_LIMIT:?} for parent {parent} \
                     to commit — its owner likely died before grafting"
                );
                std::thread::yield_now();
            }
            return tree
                .graft_minted(id)
                .expect("AcceptAll admits every oracle-approved block");
        }
        // K[parent] is full: the feedback step. Adopt one of the winners
        // as the next graft parent (the mint stays an arena orphan).
        assert!(
            std::time::Instant::now() < deadline,
            "frugal_append wedged: p{merit_index} lost the K-slot race \
             {attempt} times without admission ({FRUGAL_STALL_LIMIT:?})"
        );
        let r = splitmix64_at(seed ^ 0xF2C6_A1D3, (step << 8) | (attempt & 0xFF));
        parent = admitted[(r as usize) % admitted.len()];
        attempt += 1;
    }
}

/// Drives `cfg` against a fresh `ConcurrentBlockTree<F, AcceptAll>` and
/// records the history. The run is linearizable by construction of the
/// tree — the point is that the *recorded evidence* is checked by the
/// Wing–Gong search, not assumed.
pub fn run_concurrent_workload<F: SelectionFn>(selection: F, cfg: &MtConfig) -> MtRun {
    let tree = ConcurrentBlockTree::new(selection, AcceptAll);
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(cfg.appenders + cfg.readers);
    let oracle = if let Some(k) = cfg.frugal_k {
        let merits = Merits::uniform(cfg.appenders.max(1));
        Some(SharedOracle::new(ThetaOracle::frugal(
            k,
            merits,
            cfg.appenders.max(1) as f64,
            cfg.seed,
        )))
    } else if cfg.mine {
        let merits = Merits::uniform(cfg.appenders.max(1));
        Some(SharedOracle::new(ThetaOracle::prodigal(
            merits,
            cfg.appenders.max(1) as f64,
            cfg.seed,
        )))
    } else {
        None
    };

    let tick = |clock: &AtomicU64| Time(clock.fetch_add(1, Ordering::AcqRel) + 1);

    let mut logs: Vec<Vec<LoggedOp>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for a in 0..cfg.appenders {
            let (tree, clock, barrier, oracle) = (&tree, &clock, &barrier, &oracle);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId(a as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.appends_per_round {
                        let step = (round * cfg.appends_per_round + i) as u64;
                        let nonce = ((a as u64) << 40) | step;
                        let work = 1 + splitmix64_at(cfg.seed ^ ((a as u64) << 16), step) % 4;
                        let (t0, id, t1) = if cfg.frugal_k.is_some() {
                            // Θ_F gate: the whole getToken*→consumeToken→
                            // graft sequence is the refined append
                            // (Def. 3.7) — one recorded operation.
                            let oracle = oracle.as_ref().expect("frugal_k implies an oracle");
                            let t0 = tick(clock);
                            let id = frugal_append(tree, oracle, a, work, nonce, cfg.seed, step);
                            (t0, id, tick(clock))
                        } else {
                            if let Some(oracle) = oracle {
                                // Protocol-A flavour: win a token for the tip
                                // you are about to mine on (Θ_P always grants).
                                let grant = loop {
                                    let tip = tree.selected_tip();
                                    if let Some(g) = oracle.get_token(a, tip) {
                                        break g;
                                    }
                                };
                                let _ = grant;
                            }
                            let cand = CandidateBlock::simple(me, nonce).with_work(work);
                            let t0 = tick(clock);
                            let id = tree.append(cand);
                            let t1 = tick(clock);
                            (t0, id.expect("AcceptAll appends always succeed"), t1)
                        };
                        log.push((
                            me,
                            Invocation::Append { block: id },
                            t0,
                            Response::Appended(true),
                            t1,
                        ));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for r in 0..cfg.readers {
            let (tree, clock, barrier) = (&tree, &clock, &barrier);
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let me = ProcessId((cfg.appenders + r) as u32);
                let mut log: Vec<LoggedOp> = Vec::new();
                for round in 0..cfg.rounds {
                    barrier.wait();
                    for i in 0..cfg.reads_per_round {
                        let step = (round * cfg.reads_per_round + i) as u64;
                        // Seeded pacing: sometimes yield so reads land in
                        // different phases of the appenders' work.
                        if splitmix64_at(cfg.seed ^ 0x5EAD, ((r as u64) << 24) | step)
                            .is_multiple_of(3)
                        {
                            std::thread::yield_now();
                        }
                        let t0 = tick(clock);
                        let chain = tree.read_owned();
                        let t1 = tick(clock);
                        log.push((me, Invocation::Read, t0, Response::Chain(chain), t1));
                    }
                    barrier.wait();
                }
                log
            }));
        }
        for h in handles {
            logs.push(h.join().expect("workload threads do not panic"));
        }
    });

    let mut merged: Vec<LoggedOp> = logs.into_iter().flatten().collect();
    // Deterministic recording order (the history's semantics only depend
    // on timestamps, but stable op ids make failures reproducible to read).
    merged.sort_by_key(|(_, _, t0, _, _)| *t0);
    let mut history = History::new();
    let mut appended = 0;
    for (p, inv, t0, resp, t1) in merged {
        if matches!(resp, Response::Appended(true)) {
            appended += 1;
        }
        history.push_complete(p, inv, t0, resp, t1);
    }

    MtRun {
        store: tree.snapshot_store(),
        commit_log: tree.commit_log(),
        final_chain: tree.read_owned(),
        history,
        appended,
        fork_coherent: oracle.as_ref().map(|o| o.fork_coherent()),
    }
}
