//! Replicated BlockTrees (§4.2): "the BlockTree being now a shared object
//! replicated at each process, we note by `bt_i` the local copy … An update
//! related to a block `b_i` generated on a process `p_i`, sent through
//! `send_i(b_g, b_i)`, and received through `receive_j(b_g, b_i)`, takes
//! effect on the local replica `bt_j` with the operation
//! `update_j(b_g, b_i)`."
//!
//! A [`Replica`] is a membership view over the global arena plus an orphan
//! buffer: with out-of-order delivery a block can arrive before its parent;
//! the update *takes effect* (and is recorded) only once the parent is
//! present — memberships stay parent-closed by construction.
//!
//! Each replica also owns a [`ChainCache`]: `update_i` re-selects
//! incrementally through [`SelectionFn::on_insert`] as blocks take effect,
//! so the per-delivery cost is amortized O(1)/O(log n) instead of a full
//! `f(bt_i)` rescan, and `read`/`tip` are O(1). The cache requires every
//! `update` to be driven by the *same* selection function `f` — which the
//! paper guarantees ("encoded in the state", common to all replicas of a
//! world).

use crate::trace::Trace;
use btadt_core::chain::Blockchain;
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::{BlockStore, TreeMembership};
use btadt_core::tipcache::ChainCache;

/// One process's local BlockTree `bt_i`.
#[derive(Clone, Debug)]
pub struct Replica {
    pub id: ProcessId,
    tree: TreeMembership,
    /// Blocks received whose parent is not yet local: `(parent, block)`.
    orphans: Vec<(BlockId, BlockId)>,
    /// Incrementally maintained selected chain of `bt_i`.
    cache: ChainCache,
}

impl Replica {
    pub fn new(id: ProcessId) -> Self {
        Replica {
            id,
            tree: TreeMembership::genesis_only(),
            orphans: Vec::new(),
            cache: ChainCache::new(),
        }
    }

    /// The local membership (blocks in `bt_i`).
    pub fn tree(&self) -> &TreeMembership {
        &self.tree
    }

    /// Number of blocks in `bt_i` (incl. genesis).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the replica hold `block`?
    pub fn contains(&self, block: BlockId) -> bool {
        self.tree.contains(block)
    }

    /// `update_i(b_g, b)`: inserts `block` under `parent` if the parent is
    /// local (recording the update event); otherwise buffers it. Cascades
    /// orphans that become connectable. Returns the blocks actually
    /// applied, in application order.
    ///
    /// `selection` is the world's common `f`; every applied block is
    /// reported to the replica's [`ChainCache`] so `read`/`tip` stay O(1).
    pub fn update(
        &mut self,
        store: &BlockStore,
        selection: &dyn SelectionFn,
        parent: BlockId,
        block: BlockId,
        trace: &mut Trace,
        now: Time,
    ) -> Vec<BlockId> {
        let mut applied = Vec::new();
        if self.tree.contains(block) {
            return applied; // duplicate announcement
        }
        if !self.tree.contains(parent) {
            if !self.orphans.contains(&(parent, block)) {
                self.orphans.push((parent, block));
            }
            return applied;
        }
        self.tree.insert(store, block);
        self.cache.on_insert(selection, store, &self.tree, block);
        trace.record_update(now, self.id, parent, block);
        applied.push(block);
        // Cascade orphans (fixpoint).
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.orphans.len() {
                let (p, b) = self.orphans[i];
                if self.tree.contains(p) && !self.tree.contains(b) {
                    self.orphans.swap_remove(i);
                    self.tree.insert(store, b);
                    self.cache.on_insert(selection, store, &self.tree, b);
                    trace.record_update(now, self.id, p, b);
                    applied.push(b);
                    progressed = true;
                } else if self.tree.contains(b) {
                    self.orphans.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        applied
    }

    /// The local `read()`: `{b0}⌢f(bt_i)` (not recorded — callers decide
    /// whether a read is an observable operation). Served from the
    /// incremental cache; `selection` must be the same `f` the updates
    /// were applied under (debug-asserted).
    pub fn read(&self, store: &BlockStore, selection: &dyn SelectionFn) -> Blockchain {
        self.cache.debug_validate(selection, store, &self.tree);
        self.cache.chain()
    }

    /// The tip `last_block(f(bt_i))` — what local mining chains onto.
    /// O(1) from the cache.
    pub fn tip(&self, store: &BlockStore, selection: &dyn SelectionFn) -> BlockId {
        self.cache.debug_validate(selection, store, &self.tree);
        self.cache.tip()
    }

    /// Outstanding orphans (diagnostics).
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::block::Payload;
    use btadt_core::selection::LongestChain;

    fn mint(store: &mut BlockStore, parent: BlockId, nonce: u64) -> BlockId {
        store.mint(parent, ProcessId(9), 9, 1, nonce, Payload::Empty)
    }

    #[test]
    fn in_order_updates_apply_immediately() {
        let mut store = BlockStore::new();
        let a = mint(&mut store, BlockId::GENESIS, 1);
        let b = mint(&mut store, a, 2);
        let mut r = Replica::new(ProcessId(0));
        let mut t = Trace::new();
        assert_eq!(
            r.update(&store, &LongestChain, BlockId::GENESIS, a, &mut t, Time(1)),
            vec![a]
        );
        assert_eq!(
            r.update(&store, &LongestChain, a, b, &mut t, Time(2)),
            vec![b]
        );
        assert_eq!(r.len(), 3);
        assert_eq!(t.updates().count(), 2);
        assert_eq!(r.read(&store, &LongestChain).tip(), b);
    }

    #[test]
    fn orphans_buffer_until_parent_arrives() {
        let mut store = BlockStore::new();
        let a = mint(&mut store, BlockId::GENESIS, 1);
        let b = mint(&mut store, a, 2);
        let c = mint(&mut store, b, 3);
        let mut r = Replica::new(ProcessId(0));
        let mut t = Trace::new();
        // Deliver out of order: c, b, a.
        assert!(r
            .update(&store, &LongestChain, b, c, &mut t, Time(1))
            .is_empty());
        assert!(r
            .update(&store, &LongestChain, a, b, &mut t, Time(2))
            .is_empty());
        assert_eq!(r.orphan_count(), 2);
        let applied = r.update(&store, &LongestChain, BlockId::GENESIS, a, &mut t, Time(3));
        assert_eq!(applied, vec![a, b, c], "cascade in ancestor order");
        assert_eq!(r.orphan_count(), 0);
        assert_eq!(r.len(), 4);
        // Update events recorded only when applied (all at t3 here).
        assert!(t.updates().all(|(at, ..)| at == Time(3) || at < Time(3)));
        assert_eq!(t.updates().count(), 3);
    }

    #[test]
    fn duplicate_updates_are_inert() {
        let mut store = BlockStore::new();
        let a = mint(&mut store, BlockId::GENESIS, 1);
        let mut r = Replica::new(ProcessId(0));
        let mut t = Trace::new();
        assert_eq!(
            r.update(&store, &LongestChain, BlockId::GENESIS, a, &mut t, Time(1))
                .len(),
            1
        );
        assert!(r
            .update(&store, &LongestChain, BlockId::GENESIS, a, &mut t, Time(2))
            .is_empty());
        assert_eq!(t.updates().count(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn divergent_replicas_read_divergent_chains() {
        let mut store = BlockStore::new();
        let a = mint(&mut store, BlockId::GENESIS, 1);
        let b = mint(&mut store, BlockId::GENESIS, 2);
        let mut t = Trace::new();
        let mut ri = Replica::new(ProcessId(0));
        let mut rj = Replica::new(ProcessId(1));
        ri.update(&store, &LongestChain, BlockId::GENESIS, a, &mut t, Time(1));
        rj.update(&store, &LongestChain, BlockId::GENESIS, b, &mut t, Time(1));
        let ci = ri.read(&store, &LongestChain);
        let cj = rj.read(&store, &LongestChain);
        assert_ne!(ci, cj);
        assert!(!ci.comparable(&cj), "the Thm 4.8 shape");
    }
}
