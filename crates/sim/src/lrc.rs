//! Light Reliable Communication (Def. 4.4) — the communication abstraction
//! Thm. 4.7 proves necessary for BT Eventual Consistency.
//!
//! * **Validity** — `∀ send_i(b, b_i) ∈ H, ∃ receive_i(b, b_i) ∈ H`: a
//!   correct sender eventually receives its own message;
//! * **Agreement** — if any correct process receives `m`, every correct
//!   process eventually receives `m`.
//!
//! [`check_lrc`] evaluates both on a recorded trace. The standard
//! *implementation* of LRC over fair channels is flooding-with-echo
//! (re-broadcast on first receipt, cf. reliable broadcast [9]);
//! [`gossip_applied`] is the reusable protocol fragment for it.

use crate::trace::Trace;
use crate::world::Ctx;
use btadt_core::ids::{BlockId, ProcessId};
use std::collections::HashSet;
use std::fmt;

/// Verdicts for the two LRC properties.
#[derive(Clone, Debug)]
pub struct LrcReport {
    pub validity: bool,
    pub agreement: bool,
    /// `(sender, block)` sends never self-received.
    pub validity_violations: Vec<(ProcessId, BlockId)>,
    /// `(missing_receiver, block)` blocks received somewhere but not
    /// everywhere (among correct processes).
    pub agreement_violations: Vec<(ProcessId, BlockId)>,
}

impl LrcReport {
    pub fn holds(&self) -> bool {
        self.validity && self.agreement
    }
}

impl fmt::Display for LrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Light Reliable Communication: {}",
            if self.holds() { "HOLDS" } else { "VIOLATED" }
        )?;
        writeln!(
            f,
            "  Validity  (send_i ⇒ receive_i):      {}",
            if self.validity { "✓" } else { "✗" }
        )?;
        writeln!(
            f,
            "  Agreement (one receives ⇒ all do):   {}",
            if self.agreement { "✓" } else { "✗" }
        )?;
        for (p, b) in self.validity_violations.iter().take(3) {
            writeln!(
                f,
                "    validity witness: send_{p}(·, {b}) never self-received"
            )?;
        }
        for (p, b) in self.agreement_violations.iter().take(3) {
            writeln!(
                f,
                "    agreement witness: {b} received somewhere, never by {p}"
            )?;
        }
        Ok(())
    }
}

/// Checks the LRC properties on a trace, restricted to correct processes.
pub fn check_lrc(trace: &Trace, correct: &[bool]) -> LrcReport {
    let trace = trace.restrict_correct(correct);
    let is_correct = |p: ProcessId| correct.get(p.index()).copied().unwrap_or(false);

    let received: HashSet<(ProcessId, BlockId)> = trace
        .receives()
        .map(|(_, by, _, block)| (by, block))
        .collect();

    let mut validity_violations = Vec::new();
    for (_, by, _, block) in trace.sends() {
        if !received.contains(&(by, block)) {
            validity_violations.push((by, block));
        }
    }
    validity_violations.sort();
    validity_violations.dedup();

    // Agreement: blocks received by at least one correct process.
    let mut somewhere: Vec<BlockId> = received.iter().map(|(_, b)| *b).collect();
    somewhere.sort();
    somewhere.dedup();

    let n = correct.len();
    let mut agreement_violations = Vec::new();
    for &block in &somewhere {
        for k in 0..n {
            let k = ProcessId(k as u32);
            if is_correct(k) && !received.contains(&(k, block)) {
                agreement_violations.push((k, block));
            }
        }
    }
    agreement_violations.sort();

    LrcReport {
        validity: validity_violations.is_empty(),
        agreement: agreement_violations.is_empty(),
        validity_violations,
        agreement_violations,
    }
}

/// Flooding-with-echo fragment: apply an incoming block and re-broadcast
/// everything that newly took effect. Using this in `on_block` implements
/// LRC over connected fair-lossy-free networks.
pub fn gossip_applied<X: Clone>(
    ctx: &mut Ctx<'_, X>,
    parent: BlockId,
    block: BlockId,
) -> Vec<BlockId> {
    let applied = ctx.apply_update(parent, block);
    for &b in &applied {
        let p = ctx
            .store
            .get(b)
            .parent
            .expect("applied blocks are non-genesis");
        ctx.broadcast_block(p, b);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::ids::Time;

    #[test]
    fn complete_dissemination_holds() {
        let g = BlockId::GENESIS;
        let b = BlockId(1);
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), g, b);
        for p in 0..3u32 {
            t.record_receive(Time(2 + p as u64), ProcessId(p), ProcessId(0), g, b);
        }
        let rep = check_lrc(&t, &[true, true, true]);
        assert!(rep.holds(), "{rep}");
    }

    #[test]
    fn missing_self_receive_violates_validity() {
        let g = BlockId::GENESIS;
        let b = BlockId(1);
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), g, b);
        t.record_receive(Time(2), ProcessId(1), ProcessId(0), g, b);
        let rep = check_lrc(&t, &[true, true]);
        assert!(!rep.validity);
        assert_eq!(rep.validity_violations, vec![(ProcessId(0), b)]);
    }

    #[test]
    fn partial_dissemination_violates_agreement() {
        let g = BlockId::GENESIS;
        let b = BlockId(1);
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), g, b);
        t.record_receive(Time(2), ProcessId(0), ProcessId(0), g, b);
        t.record_receive(Time(3), ProcessId(1), ProcessId(0), g, b);
        // ProcessId(2), correct, never receives b.
        let rep = check_lrc(&t, &[true, true, true]);
        assert!(rep.validity);
        assert!(!rep.agreement);
        assert_eq!(rep.agreement_violations, vec![(ProcessId(2), b)]);
    }

    #[test]
    fn faulty_receivers_are_exempt() {
        let g = BlockId::GENESIS;
        let b = BlockId(1);
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(0), g, b);
        t.record_receive(Time(2), ProcessId(0), ProcessId(0), g, b);
        let rep = check_lrc(&t, &[true, false]);
        assert!(rep.holds(), "faulty p1 need not receive: {rep}");
    }

    #[test]
    fn sends_by_faulty_processes_ignored() {
        let g = BlockId::GENESIS;
        let b = BlockId(1);
        let mut t = Trace::new();
        t.record_send(Time(1), ProcessId(1), g, b); // p1 is faulty
        let rep = check_lrc(&t, &[true, false]);
        assert!(rep.holds(), "{rep}");
    }
}
