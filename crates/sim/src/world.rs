//! The deterministic discrete-event simulator: `n` processes running a
//! [`Protocol`], a [`NetworkModel`], a global block arena, a token oracle,
//! and a [`Trace`] recording the §4.2 event vocabulary.
//!
//! # Clock
//!
//! The fictional global clock (§4.2) runs in **microticks**: one network
//! tick = [`TICK`] microticks. Events inside a tick get distinct,
//! monotonically increasing microtick stamps, so recorded histories are
//! well-formed (every response strictly after its invocation) while
//! network delays stay expressed in whole ticks. Processes never read the
//! clock — only the harness does.
//!
//! # Determinism
//!
//! Message delivery order is a `BTreeMap` keyed by `(delivery_tick, seq)`;
//! process callbacks run in process-id order; all randomness is SplitMix64
//! streams. Same seeds ⇒ same execution, bit for bit.

use crate::network::NetworkModel;
use crate::replica::Replica;
use crate::trace::Trace;
use btadt_core::block::Payload;
use btadt_core::chain::Blockchain;
use btadt_core::ids::{mix2, splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::BlockStore;
use btadt_oracle::{KBound, ThetaOracle};
use std::collections::BTreeMap;

/// Microticks per network tick.
pub const TICK: u64 = 1_000;

/// Messages exchanged by protocols: block announcements (the `send/receive`
/// events of §4.2) plus protocol-specific payloads.
#[derive(Clone, Debug)]
pub enum Msg<X: Clone> {
    /// Announcement of `block` chained under `parent`.
    Block { parent: BlockId, block: BlockId },
    /// Protocol-specific message.
    Custom(X),
}

/// A protocol running at every process of the world.
pub trait Protocol: Sized {
    /// Protocol-specific message payload.
    type Custom: Clone + std::fmt::Debug;

    /// Called once before the first tick.
    fn on_init(&mut self, _ctx: &mut Ctx<'_, Self::Custom>) {}

    /// Called every network tick (in process-id order).
    fn on_tick(&mut self, _ctx: &mut Ctx<'_, Self::Custom>) {}

    /// A block announcement arrived. Default: apply it to the local
    /// replica (no re-gossip — override for flooding protocols).
    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, Self::Custom>,
        _from: ProcessId,
        parent: BlockId,
        block: BlockId,
    ) {
        ctx.apply_update(parent, block);
    }

    /// A custom message arrived.
    fn on_custom(
        &mut self,
        _ctx: &mut Ctx<'_, Self::Custom>,
        _from: ProcessId,
        _msg: Self::Custom,
    ) {
    }
}

/// Everything a protocol callback may touch. Borrows split out of the
/// [`World`] for the duration of one callback.
pub struct Ctx<'a, X: Clone> {
    /// The executing process.
    pub me: ProcessId,
    /// Current global time (microticks). Protocols in the formal model
    /// cannot read the clock; implementations may use it only for
    /// harness-level bookkeeping (e.g. round numbers derived from ticks
    /// are fine under the synchronous assumption that grants rounds).
    pub now: Time,
    /// Number of processes.
    pub n: usize,
    /// The global block arena.
    pub store: &'a mut BlockStore,
    /// The token oracle (shared abstraction; see §4.4's observation that
    /// synchronization on the block to append is oracle-side).
    pub oracle: &'a mut ThetaOracle,
    /// This process's local BlockTree.
    pub replica: &'a mut Replica,
    /// The run's trace (records happen through helper methods).
    pub trace: &'a mut Trace,
    /// The selection function `f` (common to all replicas).
    pub selection: &'a dyn SelectionFn,
    outbox: &'a mut Vec<(Option<ProcessId>, Msg<X>)>,
    rng_seed: u64,
    rng_ctr: &'a mut u64,
    micro: &'a mut u64,
    nonce: &'a mut u64,
}

impl<X: Clone> Ctx<'_, X> {
    fn next_micro(&mut self) -> Time {
        *self.micro += 1;
        Time(*self.micro)
    }

    /// Deterministic per-world random word.
    pub fn random(&mut self) -> u64 {
        let v = splitmix64_at(self.rng_seed, *self.rng_ctr);
        *self.rng_ctr += 1;
        v
    }

    /// One mining attempt at the local tip (one tape cell): the refined
    /// append specialised to the message-passing world. On success the
    /// block is minted, the token consumed, the local replica updated, and
    /// an `append` operation recorded. Returns the new block.
    pub fn mine(&mut self, payload: Payload, work: u64) -> Option<BlockId> {
        let parent = self.replica.tip(self.store, self.selection);
        self.mine_at(parent, payload, work)
    }

    /// One mining attempt against an explicit parent.
    pub fn mine_at(&mut self, parent: BlockId, payload: Payload, work: u64) -> Option<BlockId> {
        let invoked = self.next_micro();
        let grant = self.oracle.get_token(self.me.index(), parent)?;
        let admits = match self.oracle.k() {
            KBound::Finite(k) => self.oracle.consumed_for(parent).len() < k as usize,
            KBound::Infinite => true,
        };
        if !admits {
            // Token burned against a full K[parent]: unsuccessful append,
            // not part of Ĥ; nothing minted.
            let _ = self.oracle.consume_token(&grant, BlockId(u32::MAX));
            return None;
        }
        *self.nonce += 1;
        let block = self
            .store
            .mint(parent, self.me, self.me.0, work, *self.nonce, payload);
        let set = self.oracle.consume_token(&grant, block);
        debug_assert!(set.contains(&block));
        let responded = self.next_micro();
        self.trace.record_append(self.me, block, invoked, responded);
        let at = self.next_micro();
        self.replica
            .update(self.store, self.selection, parent, block, self.trace, at);
        Some(block)
    }

    /// Applies a remote block to the local replica (`update_i`), returning
    /// the blocks that took effect (orphan cascade included).
    pub fn apply_update(&mut self, parent: BlockId, block: BlockId) -> Vec<BlockId> {
        let at = self.next_micro();
        self.replica
            .update(self.store, self.selection, parent, block, self.trace, at)
    }

    /// Broadcasts a block announcement to every process (including self —
    /// LRC Validity wants `send_i ⇒ receive_i`), recording the
    /// `send_i(b_g, b_i)` event.
    pub fn broadcast_block(&mut self, parent: BlockId, block: BlockId) {
        let at = self.next_micro();
        self.trace.record_send(at, self.me, parent, block);
        self.outbox.push((None, Msg::Block { parent, block }));
    }

    /// Point-to-point block send (recorded as a send event).
    pub fn send_block_to(&mut self, to: ProcessId, parent: BlockId, block: BlockId) {
        let at = self.next_micro();
        self.trace.record_send(at, self.me, parent, block);
        self.outbox.push((Some(to), Msg::Block { parent, block }));
    }

    /// Broadcasts a protocol message.
    pub fn broadcast_custom(&mut self, msg: X) {
        self.outbox.push((None, Msg::Custom(msg)));
    }

    /// Point-to-point protocol message.
    pub fn send_custom(&mut self, to: ProcessId, msg: X) {
        self.outbox.push((Some(to), Msg::Custom(msg)));
    }

    /// The local chain `{b0}⌢f(bt_i)` (not recorded).
    pub fn read_local(&self) -> Blockchain {
        self.replica.read(self.store, self.selection)
    }

    /// The local selected tip.
    pub fn tip(&self) -> BlockId {
        self.replica.tip(self.store, self.selection)
    }

    /// Records an observable `read()` operation in the history.
    pub fn read_recorded(&mut self) -> Blockchain {
        let invoked = self.next_micro();
        let chain = self.read_local();
        let responded = self.next_micro();
        self.trace
            .record_read(self.me, chain.clone(), invoked, responded);
        chain
    }
}

struct Envelope<X: Clone> {
    from: ProcessId,
    to: ProcessId,
    msg: Msg<X>,
}

/// The simulator.
pub struct World<P: Protocol> {
    pub store: BlockStore,
    pub oracle: ThetaOracle,
    pub trace: Trace,
    procs: Vec<Option<P>>,
    pub replicas: Vec<Replica>,
    net: NetworkModel,
    selection: Box<dyn SelectionFn>,
    inbox: BTreeMap<(u64, u64), Envelope<P::Custom>>,
    tick: u64,
    micro: u64,
    crashed: Vec<bool>,
    byzantine: Vec<bool>,
    seq: u64,
    rng_seed: u64,
    rng_ctr: u64,
    nonce: u64,
    outbox_buf: Vec<(Option<ProcessId>, Msg<P::Custom>)>,
    /// If set, every correct process performs a recorded `read()` every
    /// this-many ticks.
    pub read_every: Option<u64>,
}

impl<P: Protocol> World<P> {
    pub fn new(
        protocols: Vec<P>,
        oracle: ThetaOracle,
        net: NetworkModel,
        selection: Box<dyn SelectionFn>,
        seed: u64,
    ) -> Self {
        let n = protocols.len();
        assert!(n > 0, "need at least one process");
        let mut w = World {
            store: BlockStore::new(),
            oracle,
            trace: Trace::new(),
            procs: protocols.into_iter().map(Some).collect(),
            replicas: (0..n).map(|i| Replica::new(ProcessId(i as u32))).collect(),
            net,
            selection,
            inbox: BTreeMap::new(),
            tick: 0,
            micro: 0,
            crashed: vec![false; n],
            byzantine: vec![false; n],
            seq: 0,
            rng_seed: mix2(seed, 0x570_13D),
            rng_ctr: 0,
            nonce: 0,
            outbox_buf: Vec::new(),
            read_every: None,
        };
        for i in 0..n {
            w.dispatch(i, |p, ctx| p.on_init(ctx));
        }
        w
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Current time in microticks.
    pub fn now(&self) -> Time {
        Time(self.micro)
    }

    /// Current network tick.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Crash-stops a process (no further callbacks or deliveries).
    pub fn crash(&mut self, p: ProcessId) {
        self.crashed[p.index()] = true;
    }

    /// Marks a process Byzantine for the Def. 4.2 history restriction
    /// (its behaviour is whatever its `Protocol` impl does).
    pub fn mark_byzantine(&mut self, p: ProcessId) {
        self.byzantine[p.index()] = true;
    }

    /// `correct[i]` ⇔ process `i` is neither crashed nor Byzantine.
    pub fn correct_mask(&self) -> Vec<bool> {
        (0..self.n())
            .map(|i| !self.crashed[i] && !self.byzantine[i])
            .collect()
    }

    /// Runs `ticks` network ticks.
    pub fn run_ticks(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step_tick();
        }
    }

    fn step_tick(&mut self) {
        self.tick += 1;
        self.micro = self.micro.max(self.tick * TICK);

        // 1. Deliver everything due up to this tick, in (time, seq) order.
        let due: Vec<(u64, u64)> = self
            .inbox
            .range(..(self.tick + 1, 0))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let env = self.inbox.remove(&key).expect("key just observed");
            let to = env.to.index();
            if self.crashed[to] {
                continue;
            }
            match env.msg {
                Msg::Block { parent, block } => {
                    let at = Time(self.next_micro());
                    self.trace
                        .record_receive(at, env.to, env.from, parent, block);
                    self.dispatch(to, |p, ctx| p.on_block(ctx, env.from, parent, block));
                }
                Msg::Custom(m) => {
                    self.dispatch(to, |p, ctx| p.on_custom(ctx, env.from, m));
                }
            }
        }

        // 2. Scheduled observable reads.
        if let Some(every) = self.read_every {
            if every > 0 && self.tick.is_multiple_of(every) {
                for i in 0..self.n() {
                    if !self.crashed[i] {
                        self.dispatch(i, |_, ctx| {
                            ctx.read_recorded();
                        });
                    }
                }
            }
        }

        // 3. Protocol ticks, process-id order.
        for i in 0..self.n() {
            if !self.crashed[i] {
                self.dispatch(i, |p, ctx| p.on_tick(ctx));
            }
        }
    }

    fn next_micro(&mut self) -> u64 {
        self.micro += 1;
        self.micro
    }

    fn dispatch(&mut self, i: usize, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Custom>)) {
        let mut proto = self.procs[i].take().expect("no reentrant dispatch");
        {
            let mut ctx = Ctx {
                me: ProcessId(i as u32),
                now: Time(self.micro),
                n: self.replicas.len(),
                store: &mut self.store,
                oracle: &mut self.oracle,
                replica: &mut self.replicas[i],
                trace: &mut self.trace,
                selection: self.selection.as_ref(),
                outbox: &mut self.outbox_buf,
                rng_seed: self.rng_seed,
                rng_ctr: &mut self.rng_ctr,
                micro: &mut self.micro,
                nonce: &mut self.nonce,
            };
            f(&mut proto, &mut ctx);
        }
        self.procs[i] = Some(proto);
        self.flush_outbox(ProcessId(i as u32));
    }

    fn flush_outbox(&mut self, from: ProcessId) {
        let msgs = std::mem::take(&mut self.outbox_buf);
        for (dest, msg) in msgs {
            match dest {
                Some(to) => self.route_one(from, to, msg),
                None => {
                    for to in 0..self.n() {
                        self.route_one(from, ProcessId(to as u32), msg.clone());
                    }
                }
            }
        }
    }

    fn route_one(&mut self, from: ProcessId, to: ProcessId, msg: Msg<P::Custom>) {
        // Self-delivery is local: next tick, never dropped (a process's
        // channel to itself is not a network channel).
        let delivery_tick = if from == to {
            Some(self.tick + 1)
        } else {
            self.net
                .route(from, to, Time(self.tick))
                .map(|t| t.0.max(self.tick + 1))
        };
        if let Some(dt) = delivery_tick {
            self.seq += 1;
            self.inbox
                .insert((dt, self.seq), Envelope { from, to, msg });
        }
    }

    /// A recorded `read()` at every correct process (used by experiment
    /// drivers for final read rounds).
    pub fn read_all(&mut self) {
        for i in 0..self.n() {
            if !self.crashed[i] {
                self.dispatch(i, |_, ctx| {
                    ctx.read_recorded();
                });
            }
        }
    }

    /// The selection function `f` shared by all replicas.
    pub fn selection(&self) -> &dyn SelectionFn {
        self.selection.as_ref()
    }

    /// Immutable access to a protocol instance (diagnostics).
    pub fn protocol(&self, p: ProcessId) -> &P {
        self.procs[p.index()].as_ref().expect("not mid-dispatch")
    }

    /// Mutable access to a protocol instance (test rigging).
    pub fn protocol_mut(&mut self, p: ProcessId) -> &mut P {
        self.procs[p.index()].as_mut().expect("not mid-dispatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use btadt_core::selection::LongestChain;
    use btadt_oracle::Merits;

    /// Process 0 mines (up to a cap) and floods; others just apply.
    struct Flood {
        cap: u32,
        mined: u32,
    }

    impl Flood {
        fn new(cap: u32) -> Self {
            Flood { cap, mined: 0 }
        }
    }

    impl Protocol for Flood {
        type Custom = ();

        fn on_tick(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me == ProcessId(0) && self.mined < self.cap {
                if let Some(b) = ctx.mine(Payload::Empty, 1) {
                    self.mined += 1;
                    let parent = ctx.store.get(b).parent.expect("non-genesis");
                    ctx.broadcast_block(parent, b);
                }
            }
        }
    }

    fn world(rate: f64, seed: u64) -> World<Flood> {
        world_capped(rate, seed, u32::MAX)
    }

    fn world_capped(rate: f64, seed: u64, cap: u32) -> World<Flood> {
        let oracle = ThetaOracle::prodigal(Merits::uniform(3), rate, seed);
        World::new(
            vec![Flood::new(cap), Flood::new(cap), Flood::new(cap)],
            oracle,
            NetworkModel::synchronous(2, seed),
            Box::new(LongestChain),
            seed,
        )
    }

    #[test]
    fn blocks_propagate_to_all_replicas() {
        let mut w = world_capped(3.0, 1, 20);
        w.run_ticks(50);
        // Mining capped at 20 blocks well before tick 50; δ = 2 gives the
        // last announcement ample time to land.
        let c0 = w.replicas[0].read(&w.store, &LongestChain);
        let c1 = w.replicas[1].read(&w.store, &LongestChain);
        let c2 = w.replicas[2].read(&w.store, &LongestChain);
        assert_eq!(c0.len(), 21, "miner produced its 20 blocks");
        assert_eq!(c0, c1);
        assert_eq!(c1, c2);
    }

    #[test]
    fn trace_records_full_vocabulary() {
        let mut w = world(3.0, 2);
        w.run_ticks(30);
        assert!(w.trace.sends().count() > 0);
        assert!(w.trace.receives().count() > 0);
        assert!(w.trace.updates().count() > 0);
        assert!(w.trace.history.append_count() > 0);
        assert!(w.trace.history.validate().is_empty());
    }

    #[test]
    fn crashed_process_stops_participating() {
        let mut w = world(3.0, 3);
        w.run_ticks(10);
        let len_before = w.replicas[2].len();
        w.crash(ProcessId(2));
        w.run_ticks(30);
        assert_eq!(w.replicas[2].len(), len_before, "no updates after crash");
        assert!(w.replicas[0].len() > len_before);
    }

    #[test]
    fn periodic_reads_are_recorded() {
        let mut w = world(3.0, 4);
        w.read_every = Some(5);
        w.run_ticks(20);
        // 3 processes × 4 read points.
        assert_eq!(w.trace.history.reads().count(), 12);
    }

    #[test]
    fn deterministic_execution() {
        let run = |seed| {
            let mut w = world(2.0, seed);
            w.read_every = Some(7);
            w.run_ticks(40);
            (
                w.store.len(),
                w.trace.events.len(),
                w.trace.history.len(),
                w.replicas[1].len(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn self_delivery_supports_lrc_validity() {
        let mut w = world_capped(3.0, 6, 10);
        w.run_ticks(30); // cap hit by ~tick 10; the rest drains in-flight
                         // Every send by p0 is eventually received by p0 itself.
        let sends: Vec<_> = w.trace.sends().collect();
        assert!(!sends.is_empty());
        for (_, by, parent, block) in sends {
            assert!(
                w.trace
                    .receives()
                    .any(|(_, rby, rp, rb)| rby == by && rp == parent && rb == block),
                "sender must self-receive (LRC validity)"
            );
        }
    }
}
