//! Simulation-level scenario tests: asynchronous convergence, orphan
//! cascades under reordering, probabilistic loss with gossip recovery,
//! and determinism across network regimes.

use btadt_core::criteria::{check_eventual_consistency, ConsistencyParams, LivenessMode};
use btadt_core::ids::ProcessId;
use btadt_core::score::LengthScore;
use btadt_core::selection::LongestChain;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{
    check_lrc, check_update_agreement, DropPolicy, NetworkModel, SimpleMiner, Synchrony, World,
};

fn gossip_world(n: usize, net: NetworkModel, rate: f64, seed: u64) -> World<SimpleMiner> {
    let oracle = ThetaOracle::prodigal(Merits::uniform(n), rate, seed);
    let miners = (0..n).map(|_| SimpleMiner::gossiping()).collect();
    World::new(miners, oracle, net, Box::new(LongestChain), seed)
}

fn throttle_and_drain(w: &mut World<SimpleMiner>, drain: u64) {
    for p in 0..w.n() {
        let mined = w.protocol(ProcessId(p as u32)).mined();
        w.protocol_mut(ProcessId(p as u32)).max_blocks = Some(mined);
    }
    w.run_ticks(drain);
}

#[test]
fn asynchronous_network_converges_after_quiescence() {
    // Heavy reordering (delays ≤ 20 ticks). Note the paper's own §4.2
    // outlook: Eventual Prefix is conjectured impossible under full
    // asynchrony with continuous block production — and indeed a cut
    // placed mid-traffic fails here (see the sibling test). What *does*
    // hold: after a quiescent drain, replicas converge, and growth
    // resumed from the converged state keeps Eventual Prefix.
    for seed in [1u64, 2] {
        let net = NetworkModel::new(Synchrony::Asynchronous { max: 20 }, seed);
        let mut w = gossip_world(4, net, 0.4, seed);
        w.read_every = Some(6);
        w.run_ticks(80);
        // Throttle, stop reads, drain past the max delay: quiescence.
        for p in 0..w.n() {
            let mined = w.protocol(ProcessId(p as u32)).mined();
            w.protocol_mut(ProcessId(p as u32)).max_blocks = Some(mined);
        }
        w.read_every = None;
        w.run_ticks(25);
        let cut = w.now();
        // Resume mining from the converged state; grace before reads so
        // every replica grows past every pre-cut score.
        for p in 0..w.n() {
            w.protocol_mut(ProcessId(p as u32)).max_blocks = None;
        }
        w.run_ticks(35);
        w.read_every = Some(6);
        w.run_ticks(40);
        w.read_all();
        let params = ConsistencyParams {
            store: &w.store,
            predicate: &AcceptAll,
            score: &LengthScore,
            liveness: LivenessMode::ConvergenceCut(cut),
        };
        let ec = check_eventual_consistency(&w.trace.history, &params);
        assert!(
            ec.holds(),
            "seed {seed}: quiesced async nets converge\n{ec}"
        );
    }
}

#[test]
fn asynchronous_mid_traffic_cut_shows_the_papers_open_problem() {
    // The contrast: continuous production under asynchrony with the cut
    // placed mid-traffic leaves post-cut divergence below pre-cut scores —
    // the shape behind the paper's "Eventual Prefix impossible in an
    // asynchronous system" outlook (§4.2 TBC list).
    let seed = 1u64;
    let net = NetworkModel::new(Synchrony::Asynchronous { max: 20 }, seed);
    let mut w = gossip_world(4, net, 0.4, seed);
    w.read_every = Some(6);
    w.run_ticks(80);
    w.run_ticks(25);
    let cut = w.now();
    w.run_ticks(40);
    w.read_all();
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    let ec = check_eventual_consistency(&w.trace.history, &params);
    assert!(
        !ec.holds(),
        "this seed exhibits post-cut divergence under async traffic"
    );
}

#[test]
fn probabilistic_loss_with_gossip_echo_recovers() {
    // 10% iid loss: raw channels violate per-message delivery, but gossip
    // echo (each block re-broadcast by every receiver, ≥ 4 independent
    // chances per (block, process)) recovers LRC with overwhelming
    // probability over 4 processes — verified on fixed seeds.
    for seed in [5u64, 6] {
        let net =
            NetworkModel::synchronous(3, seed).with_drops(DropPolicy::Probabilistic { p: 0.1 });
        let mut w = gossip_world(4, net, 0.4, seed);
        w.read_every = Some(6);
        w.run_ticks(70);
        throttle_and_drain(&mut w, 20);
        let lrc = check_lrc(&w.trace, &w.correct_mask());
        assert!(
            lrc.agreement,
            "seed {seed}: gossip echo defeats 10% iid loss: {lrc}"
        );
        let ua = check_update_agreement(&w.trace, &w.store, &w.correct_mask());
        assert!(ua.r3, "seed {seed}: {ua}");
    }
}

#[test]
fn heavy_loss_without_echo_breaks_dissemination() {
    // The contrast: no gossip echo + 60% loss ⇒ some update never reaches
    // someone (with these seeds), and the checkers say exactly that.
    let seed = 9u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(3), 0.5, seed);
    let net = NetworkModel::synchronous(3, seed).with_drops(DropPolicy::Probabilistic { p: 0.6 });
    let miners = (0..3).map(|_| SimpleMiner::new()).collect();
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(6);
    w.run_ticks(60);
    throttle_and_drain(&mut w, 15);
    let ua = check_update_agreement(&w.trace, &w.store, &w.correct_mask());
    assert!(
        !ua.r3,
        "60% loss with no echo must strand some update: {ua}"
    );
}

#[test]
fn orphan_cascade_under_adversarial_reordering() {
    // Asynchronous delays reorder aggressively; replicas must buffer
    // orphans and apply them in parent order (update events stay
    // parent-closed by construction — memberships would panic otherwise).
    let seed = 11u64;
    let net = NetworkModel::new(Synchrony::Asynchronous { max: 30 }, seed);
    let mut w = gossip_world(3, net, 0.6, seed);
    w.run_ticks(50);
    // Mid-run: orphans may exist.
    let pending: usize = w.replicas.iter().map(|r| r.orphan_count()).sum();
    w.run_ticks(60);
    throttle_and_drain(&mut w, 35);
    let after: usize = w.replicas.iter().map(|r| r.orphan_count()).sum();
    assert_eq!(after, 0, "drained (was {pending} mid-run)");
    // All replicas converged to the same tree size.
    let sizes: Vec<usize> = w.replicas.iter().map(|r| r.len()).collect();
    assert!(sizes.windows(2).all(|x| x[0] == x[1]), "{sizes:?}");
}

#[test]
fn identical_seeds_identical_worlds_across_regimes() {
    for synchrony in [
        Synchrony::Synchronous { delta: 3 },
        Synchrony::WeaklySynchronous {
            tau: 20,
            delta: 3,
            wild: 15,
        },
        Synchrony::Asynchronous { max: 15 },
    ] {
        let run = |seed: u64| {
            let mut w = gossip_world(4, NetworkModel::new(synchrony, seed), 0.5, seed);
            w.read_every = Some(5);
            w.run_ticks(60);
            (w.store.len(), w.trace.events.len(), w.trace.history.len())
        };
        assert_eq!(run(42), run(42), "{synchrony:?}");
    }
}
