//! Kill−restart durability: `SIGKILL` a live workload, recover, and
//! check the WAL's guarantee from the outside.
//!
//! The headline test re-spawns this test binary as a child running
//! [`crash_child_workload`] (armed via `BTADT_CRASH_DIR`), waits until
//! the child has acked a few hundred appends to its side files, and
//! `kill()`s it — `SIGKILL`, no unwinding, no `Drop`. Recovery in the
//! parent must then produce a tree where
//!
//! * **every acked append is present** (persist-then-ack: an append
//!   returns only after its batch's fsync), in each ack lane's order;
//! * the recovered tree is structurally sound — commit log is
//!   duplicate-free and parent-closed, cached / published / full-scan
//!   tips agree;
//! * `consensus_e2e`-style checks pass: a real Protocol A round
//!   (Θ_F,k=1 oracle, racing proposer threads) anchored at the
//!   recovered tip decides with all four Def. 4.1 properties;
//! * the tree keeps accepting appends after recovery.
//!
//! A second test composes the two PR 7 pieces: a dead-winner round
//! (winning proposer crashes between `consumeToken` and graft) run on a
//! *recovered* tree, with the survivors' adoptive graft verified durable
//! by a second recovery.

use btadt_core::prelude::*;
use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use btadt_registers::{run_tree_trial, TreeConsensus};
use btadt_sim::crashsim::{crash_dir_from_env, read_all_acked, spawn_self_test, AckLog};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Deterministic split-mix style generator (no external dependency).
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn tmp_crash_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "btadt-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("crash dir");
    dir
}

type Tree = ConcurrentBlockTree<LongestChain, AcceptAll>;

fn open_tree(dir: &Path) -> Tree {
    ConcurrentBlockTree::open_durable(
        4,
        FinalityWatermark::disabled(),
        LongestChain,
        AcceptAll,
        WalConfig::new(dir.join("wal")).segment_bytes(32 * 1024),
    )
    .expect("WAL opens")
}

fn shared_oracle(n: usize, seed: u64) -> SharedOracle {
    SharedOracle::new(ThetaOracle::frugal(
        1,
        Merits::uniform(n),
        n as f64 * 0.8,
        seed,
    ))
}

/// Child-side workload. Vacuously passes unless armed with
/// `BTADT_CRASH_DIR` (which only [`spawn_self_test`] sets): three
/// appender threads hammer a durable tree, recording each acked id to a
/// per-thread side file *after* the append returns, until killed (or a
/// 60 s internal cap, so a failed kill can never hang CI).
#[test]
fn crash_child_workload() {
    let Some(dir) = crash_dir_from_env() else {
        return;
    };
    let bt = open_tree(&dir);
    let deadline = Instant::now() + Duration::from_secs(60);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let bt = &bt;
            let dir = dir.clone();
            s.spawn(move || {
                let mut ack = AckLog::create(&dir.join(format!("acked-{t}.log"))).expect("ack log");
                let mut seed = (0x5EED_0000 + t).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut i = 0u64;
                loop {
                    if i.is_multiple_of(64) && Instant::now() > deadline {
                        break;
                    }
                    let r = lcg(&mut seed);
                    let payload = match r % 3 {
                        0 => Payload::Empty,
                        1 => Payload::Opaque(r),
                        _ => Payload::Transactions(vec![Tx::new(
                            r,
                            (r % 7) as u32,
                            (r % 11) as u32,
                            r % 1000,
                        )]),
                    };
                    let cand = CandidateBlock::simple(ProcessId(t as u32), t << 40 | i)
                        .with_payload(payload)
                        .with_work(1 + r % 5);
                    let acked = if r.is_multiple_of(4) {
                        // A quarter of ops graft a fork off a random
                        // committed block instead of extending the tip.
                        let chain = bt.read_owned();
                        let ids = chain.ids();
                        let parent = ids[(lcg(&mut seed) as usize) % ids.len()];
                        bt.graft(parent, cand)
                    } else {
                        bt.append(cand)
                    };
                    if let Ok(Some(id)) = acked {
                        ack.record(id);
                    }
                    i += 1;
                }
            });
        }
    });
}

/// The acceptance-criterion test: SIGKILL mid-workload, recover, and the
/// commit log contains every acked append in ack order, passes a real
/// consensus round, and keeps appending.
#[test]
fn kill_restart_recovery_preserves_acked_appends() {
    let dir = tmp_crash_dir("kill");
    let mut child = spawn_self_test("crash_child_workload", &dir).expect("re-spawn test binary");

    // Let the child ack a meaningful amount of durable work, then pull
    // the plug while it is mid-flight.
    let poll_start = Instant::now();
    loop {
        let total: usize = read_all_acked(&dir).iter().map(Vec::len).sum();
        if total >= 500 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("child exited before the kill: {status}");
        }
        assert!(
            poll_start.elapsed() < Duration::from_secs(30),
            "child acked only {total} appends in 30 s; wanted 500"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the workload");
    child.wait().expect("reap the child");

    let lanes = read_all_acked(&dir);
    let bt = open_tree(&dir);
    let log = bt.commit_log();

    // Persist-then-ack: every acked id recovered, each lane's acks in
    // commit-log order (a lane's appends are sequential in its thread).
    let pos: HashMap<BlockId, usize> = log.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    assert_eq!(pos.len(), log.len(), "recovered commit log has duplicates");
    let mut acked_total = 0usize;
    for (lane_no, lane) in lanes.iter().enumerate() {
        let mut last = None;
        for id in lane {
            let p = *pos
                .get(id)
                .unwrap_or_else(|| panic!("acked {id} (lane {lane_no}) missing after recovery"));
            if let Some(q) = last {
                assert!(
                    q < p,
                    "lane {lane_no}: acks out of commit order ({q} !< {p})"
                );
            }
            last = Some(p);
            acked_total += 1;
        }
    }
    assert!(acked_total >= 500, "poll loop guaranteed 500 acks");

    // Structural soundness: parent-closed membership, all tip views
    // agree, heights chain.
    let members: std::collections::HashSet<BlockId> =
        log.iter().copied().chain([BlockId::GENESIS]).collect();
    let store = bt.store();
    for &id in &log {
        let meta = store.meta(id);
        let parent = meta.parent.expect("only genesis is parentless");
        assert!(
            members.contains(&parent),
            "recovered member {id} has non-member parent {parent}"
        );
        assert_eq!(meta.height, store.meta(parent).height + 1, "height chains");
    }
    assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
    assert_eq!(bt.read_owned().tip(), bt.selected_tip());

    // consensus_e2e-style: a real Protocol A round on the recovered tree
    // must satisfy Def. 4.1 end to end.
    let oracle = shared_oracle(3, 7);
    let c = TreeConsensus::new(&bt, &oracle, bt.selected_tip());
    let report = run_tree_trial(&c, 3, 0x00C0_FFEE_0000_0000);
    assert!(report.termination(), "Termination on the recovered tree");
    assert!(report.integrity(), "Integrity: {:?}", report.grafted);
    assert!(report.agreement(), "Agreement: {:?}", report.decisions);
    assert!(report.validity(), "Validity: {:?}", report.decisions);
    let decided = report.decided().expect("agreement asserted");
    assert!(bt.is_committed(decided), "decision is a committed member");

    // And the tree keeps going: post-recovery appends land normally.
    let before = bt.len();
    for i in 0..25u64 {
        bt.append(CandidateBlock::simple(ProcessId(9), 0xA55_0000 + i))
            .expect("AcceptAll admits everything");
    }
    assert_eq!(bt.len(), before + 25, "recovered tree keeps appending");
}

/// Dead-winner recovery composed with crash recovery: the winning
/// proposer dies between `consumeToken` and graft *on a tree that was
/// itself just recovered*, survivors adopt the committed-K winner within
/// the grace, and the adoptive graft is durable (a second recovery still
/// has it).
#[test]
fn dead_winner_round_on_a_recovered_tree_is_durable() {
    for seed in 0..4u64 {
        let dir = tmp_crash_dir(&format!("deadwinner-{seed}"));
        {
            // Durable history, then a hard drop (no shutdown hook
            // exists, by design: every publication already fsynced).
            let bt = open_tree(&dir);
            for i in 0..50u64 {
                bt.append(CandidateBlock::simple(ProcessId(0), i).with_work(1 + i % 3))
                    .expect("AcceptAll admits everything");
            }
        }
        let bt = open_tree(&dir);
        let winner = {
            let n = 4;
            let oracle = shared_oracle(n, seed);
            let anchor = bt.selected_tip();
            let c = TreeConsensus::with_stall_limit(&bt, &oracle, anchor, Duration::from_secs(10));
            // Proposer 0 runs alone, wins the K-set, and "crashes"
            // without grafting.
            let (winner, minted) = c.propose_then_crash_before_graft(
                0,
                CandidateBlock::simple(ProcessId(0), 0xDEAD_0000 + seed),
            );
            assert_eq!(winner, minted, "a solo consume wins its own K-set");
            assert!(!bt.is_committed(winner), "the dead winner never grafted");
            let t0 = Instant::now();
            let c = &c;
            let outcomes: Vec<_> = std::thread::scope(|s| {
                (1..n)
                    .map(|who| {
                        s.spawn(move || {
                            c.propose(
                                who,
                                CandidateBlock::simple(ProcessId(who as u32), 0xFEED + who as u64),
                            )
                            .expect("healthy durable tree cannot poison")
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("survivors must not panic"))
                    .collect()
            });
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "seed {seed}: survivors must beat the stall deadline"
            );
            for out in &outcomes {
                assert_eq!(out.decided, winner, "seed {seed}: Agreement");
            }
            assert!(
                bt.is_committed(winner),
                "seed {seed}: adoptive graft landed"
            );
            winner
        };
        // The adoptive graft went through publish_locked like any other
        // commit, so it was fsynced before the survivors' decides
        // returned: a second recovery must still have it.
        drop(bt);
        let bt2 = open_tree(&dir);
        assert!(
            bt2.is_committed(winner),
            "seed {seed}: the survivors' graft survived a second crash"
        );
        assert_eq!(bt2.selected_tip(), bt2.selected_tip_full_scan());
    }
}

/// Fault-injected degraded mode under real concurrency: a seeded fsync
/// failure fires mid-workload while appender threads race; every thread
/// must observe a typed [`DurabilityError`] (no panic), no thread may
/// ack past its own first error (no-ack-after-poisoning, asserted
/// inside the harness), and after power loss + recovery every acked id
/// — from any thread, in any interleaving — must be in the durable
/// commit log. `BTADT_FAULT_SEED` replays a failing base seed exactly.
#[test]
fn fault_injected_fsync_failure_degrades_without_acks_under_concurrency() {
    use btadt_core::vfs::{FaultConfig, TornTail};
    use btadt_sim::{fault_seed_from_env, recover_durable, run_durable_fault_workload, MtConfig};

    let base = fault_seed_from_env().unwrap_or(0x0D15_C0DE);
    for s in 0..4u64 {
        let seed = base.wrapping_add(s);
        let cfg = MtConfig {
            seed,
            appenders: 4,
            readers: 2,
            appends_per_round: 10,
            reads_per_round: 6,
            rounds: 3,
            ..MtConfig::default()
        };
        let (run, vfs) =
            run_durable_fault_workload(LongestChain, &cfg, "/fault/wal", FaultConfig::seeded(seed));
        // The seeded schedule fails a data fsync within the first 13
        // group commits; 120 racing appends publish far more than that,
        // so the fault always fires and the tree always degrades.
        let err = run
            .error
            .unwrap_or_else(|| panic!("seed {seed}: fault never surfaced"));
        assert!(
            matches!(err, DurabilityError::PersistFailed { .. }),
            "seed {seed}: {err:?}"
        );
        assert!(run.poisoned, "seed {seed}: error without poisoning");
        assert!(
            run.acked.len() < run.attempts,
            "seed {seed}: every append acked despite a poisoned WAL"
        );
        assert!(
            run.stats.last_error.is_some(),
            "seed {seed}: WalStats did not record the failure kind"
        );

        // Power loss, then recovery: acked ⊆ recovered, exactly the
        // persist-then-ack promise under the worst interleaving.
        vfs.power_loss(TornTail::DropAll);
        let rec = recover_durable(LongestChain, "/fault/wal", &vfs)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        let log: std::collections::HashSet<BlockId> = rec.commit_log().into_iter().collect();
        for id in &run.acked {
            assert!(
                log.contains(id),
                "seed {seed}: acked {id} missing from the recovered log"
            );
        }
        // The recovered incarnation is healthy: degradation does not
        // outlive the process that hit the fault.
        let id = rec
            .append(CandidateBlock::simple(ProcessId(9), 0xFA117 + seed))
            .expect("recovered tree is healthy")
            .expect("AcceptAll admits everything");
        assert!(
            rec.is_committed(id),
            "seed {seed}: post-recovery append lost"
        );
    }
}
