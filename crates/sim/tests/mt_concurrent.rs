//! Recorded-history checking of real concurrent executions.
//!
//! `run_concurrent_workload` races OS threads on a `ConcurrentBlockTree`
//! and records a timestamped `History`; these tests hand that record to
//! the *external* checkers — the Wing–Gong linearizability search, the
//! windowed variant, and the Local Monotonic Read criterion — so the
//! implementation is judged by its evidence, never by its own assertions.
//!
//! Thread interleavings vary run to run; the seeds fix the workload
//! shape, and the asserted properties must hold for *every* interleaving,
//! which is what makes these tests deterministic in outcome.

use btadt_core::criteria::local_monotonic_read;
use btadt_core::history::Response;
use btadt_core::linearizability::{
    check_linearizable, check_linearizable_windowed, Linearizability, DEFAULT_OP_LIMIT,
};
use btadt_core::score::{LengthScore, WorkScore};
use btadt_core::selection::{HeaviestWork, LongestChain};
use btadt_sim::mtrun::{run_concurrent_workload, MtConfig};

/// ≤ DEFAULT_OP_LIMIT operations: 2 appenders × 3 + 2 readers × 4 = 14.
fn small_cfg(seed: u64) -> MtConfig {
    MtConfig {
        seed,
        appenders: 2,
        readers: 2,
        appends_per_round: 3,
        reads_per_round: 4,
        rounds: 1,
        mine: false,
        frugal_k: None,
    }
}

#[test]
fn recorded_histories_linearize_across_20_seeds_longest_chain() {
    for seed in 0..20u64 {
        let run = run_concurrent_workload(LongestChain, &small_cfg(seed));
        assert!(
            run.history.validate().is_empty(),
            "seed {seed}: recorded history is well-formed"
        );
        assert!(run.history.len() <= DEFAULT_OP_LIMIT);
        let r = check_linearizable(&run.history, &run.store, &LongestChain);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

/// The uncontended inline fast path (one appender: every commit skips
/// the queue) must be indistinguishable from the staged path in the
/// recorded evidence — same checker, same verdict, across seeds and with
/// readers racing the inline publications.
#[test]
fn inline_fast_path_histories_linearize_across_seeds() {
    for seed in 600..612u64 {
        let cfg = MtConfig {
            seed,
            appenders: 1,
            readers: 3,
            appends_per_round: 4,
            reads_per_round: 3,
            rounds: 1,
            mine: false,
            frugal_k: None,
        };
        let run = run_concurrent_workload(LongestChain, &cfg);
        assert_eq!(run.appended, 4, "seed {seed}");
        let r = check_linearizable(&run.history, &run.store, &LongestChain);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

#[test]
fn recorded_histories_linearize_under_heaviest_work() {
    for seed in 100..106u64 {
        let run = run_concurrent_workload(HeaviestWork, &small_cfg(seed));
        let r = check_linearizable(&run.history, &run.store, &HeaviestWork);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

#[test]
fn recorded_histories_linearize_with_oracle_mining() {
    for seed in 200..205u64 {
        let mut cfg = small_cfg(seed);
        cfg.mine = true;
        let run = run_concurrent_workload(LongestChain, &cfg);
        let r = check_linearizable(&run.history, &run.store, &LongestChain);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

/// A multi-round run is far past the exhaustive cap, but the barrier
/// between rounds guarantees quiescent points: the windowed checker (and
/// the `split_at_quiescence` helper it mirrors) handles the whole record.
#[test]
fn long_runs_check_via_quiescent_windows() {
    for seed in 300..305u64 {
        let cfg = MtConfig {
            seed,
            appenders: 2,
            readers: 2,
            appends_per_round: 3,
            reads_per_round: 4,
            rounds: 6,
            mine: false,
            frugal_k: None,
        };
        let run = run_concurrent_workload(LongestChain, &cfg);
        assert_eq!(run.history.len(), 6 * 14);
        match check_linearizable(&run.history, &run.store, &LongestChain) {
            Linearizability::TooLarge { ops: 84, .. } => {}
            other => panic!("seed {seed}: expected TooLarge, got {other:?}"),
        }
        let r =
            check_linearizable_windowed(&run.history, &run.store, &LongestChain, DEFAULT_OP_LIMIT);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
        // The splitting helper finds the same structure: every window fits
        // the cap, nothing is lost. (Quiescent points also occur inside
        // rounds, so the greedy merge may pack across round boundaries —
        // only the lower bound from the cap is guaranteed.)
        let windows = run.history.split_at_quiescence(DEFAULT_OP_LIMIT);
        assert!(windows.len() >= run.history.len().div_ceil(DEFAULT_OP_LIMIT));
        assert_eq!(
            windows.iter().map(|w| w.len()).sum::<usize>(),
            run.history.len()
        );
        assert!(windows.iter().all(|w| w.len() <= DEFAULT_OP_LIMIT));
    }
}

/// Seeded reader-thread stress: every per-thread read sequence must
/// satisfy Local Monotonic Read (Def. 3.2, second clause) under the score
/// matching the selection rule — lengths never shrink under longest-chain,
/// cumulative work never shrinks under heaviest-work.
#[test]
fn reader_stress_satisfies_local_monotonic_read() {
    for seed in 400..408u64 {
        let cfg = MtConfig {
            seed,
            appenders: 3,
            readers: 4,
            appends_per_round: 40,
            reads_per_round: 60,
            rounds: 2,
            mine: false,
            frugal_k: None,
        };
        let run = run_concurrent_workload(LongestChain, &cfg);
        let verdict = local_monotonic_read::check(&run.history, &LengthScore);
        assert!(
            verdict.holds,
            "seed {seed}: LMR violated under longest-chain: {:?}",
            verdict.violations
        );

        let run = run_concurrent_workload(HeaviestWork, &cfg);
        let verdict = local_monotonic_read::check(&run.history, &WorkScore::new(&run.store));
        assert!(
            verdict.holds,
            "seed {seed}: LMR violated under heaviest-work: {:?}",
            verdict.violations
        );
    }
}

/// Cross-checks the run artifacts themselves: every successful append in
/// the history is committed exactly once, and the final published chain
/// contains exactly the longest-chain commits.
#[test]
fn run_artifacts_are_coherent() {
    let cfg = MtConfig {
        seed: 7,
        appenders: 4,
        readers: 2,
        appends_per_round: 25,
        reads_per_round: 10,
        rounds: 1,
        mine: false,
        frugal_k: None,
    };
    let run = run_concurrent_workload(LongestChain, &cfg);
    assert_eq!(run.appended, 100);
    assert_eq!(run.commit_log.len(), 100);
    assert_eq!(run.fork_coherent, None, "no oracle gated this run");
    // Longest-chain `append` always extends the tip: the final chain holds
    // every committed block.
    assert_eq!(run.final_chain.len(), 101);
    // Every append the history reports successful is in the commit log.
    let committed: std::collections::HashSet<_> = run.commit_log.iter().copied().collect();
    for op in run.history.appends() {
        if matches!(op.response, Some(Response::Appended(true))) {
            if let btadt_core::history::Invocation::Append { block } = op.invocation {
                assert!(committed.contains(&block));
            }
        }
    }
}

/// The frugal Θ_F,k=1 gate (Protocol-A shape): tokens bound to parents,
/// consumeToken feedback steering losing appenders onto the winners. With
/// k = 1 every committed parent admits exactly one committed child, so
/// the membership must be a single path — and the recorded history must
/// still linearize against the BT-ADT spec.
#[test]
fn frugal_token_gate_smoke() {
    for seed in 500..505u64 {
        let cfg = MtConfig {
            seed,
            frugal_k: Some(1),
            ..small_cfg(seed)
        };
        let run = run_concurrent_workload(LongestChain, &cfg);
        assert_eq!(run.appended, 6, "seed {seed}: every frugal append lands");
        assert_eq!(
            run.fork_coherent,
            Some(true),
            "seed {seed}: Thm 3.2 k-fork coherence holds on the shared oracle"
        );
        // k = 1 ⇒ the committed membership is a path: the final chain
        // carries every commit.
        assert_eq!(run.final_chain.len(), run.commit_log.len() + 1);
        let committed: std::collections::HashSet<_> = run.commit_log.iter().copied().collect();
        for &id in &run.commit_log {
            let parent = run.store.parent(id).expect("committed blocks chain to b0");
            let member_children = run
                .store
                .children(parent)
                .iter()
                .filter(|c| committed.contains(c))
                .count();
            assert!(
                member_children <= 1,
                "seed {seed}: K-bound violated at {parent}"
            );
        }
        let r = check_linearizable(&run.history, &run.store, &LongestChain);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

/// Fork-heavy GHOST stress for the two-stage commit pipeline: 4 appenders
/// extending the selected tip race 2 forkers grafting at random depths of
/// the published chain, so drained batches regularly span several
/// subtrees and the sharded scoring path (partition → merge → one apply)
/// carries real reorg pressure. The oracle is the replay: the commit log
/// folded serially through the sequential machinery must land on the
/// published chain bit-for-bit, and the published tip must equal the
/// full-scan selection.
#[test]
fn fork_heavy_ghost_four_appender_stress() {
    use btadt_core::blocktree::CandidateBlock;
    use btadt_core::chain::Blockchain;
    use btadt_core::concurrent::ConcurrentBlockTree;
    use btadt_core::ids::{splitmix64_at, ProcessId};
    use btadt_core::selection::{Ghost, GhostWeight, SelectionFn};
    use btadt_core::store::TreeMembership;
    use btadt_core::tipcache::ChainCache;
    use btadt_core::validity::AcceptAll;

    let appenders = 4u32;
    let appends_each = 50u64;
    let forkers = 2u32;
    let grafts_each = 30u64;
    for seed in 0..6u64 {
        let rule = Ghost {
            weight: GhostWeight::BlockCount,
        };
        let cbt = ConcurrentBlockTree::new(rule, AcceptAll);
        std::thread::scope(|s| {
            for t in 0..appenders {
                let cbt = &cbt;
                s.spawn(move || {
                    for i in 0..appends_each {
                        let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                        let cand = CandidateBlock::simple(ProcessId(t), ((t as u64) << 32) | i)
                            .with_work(1 + r % 4);
                        cbt.append(cand).expect("AcceptAll");
                    }
                });
            }
            for t in appenders..appenders + forkers {
                let cbt = &cbt;
                s.spawn(move || {
                    for i in 0..grafts_each {
                        let chain = cbt.read();
                        let ids = chain.ids();
                        let r = splitmix64_at(seed ^ ((t as u64) << 8), i);
                        let parent = ids[(r as usize >> 3) % ids.len()];
                        let cand = CandidateBlock::simple(ProcessId(t), ((t as u64) << 32) | i)
                            .with_work(1 + r % 4);
                        cbt.graft(parent, cand).expect("AcceptAll");
                    }
                });
            }
        });

        let total = (appenders as u64 * appends_each + forkers as u64 * grafts_each) as usize;
        let store = cbt.snapshot_store();
        let log = cbt.commit_log();
        assert_eq!(log.len(), total, "seed {seed}: every commit recorded");
        assert_eq!(
            cbt.selected_tip(),
            cbt.selected_tip_full_scan(),
            "seed {seed}: published tip vs full-scan oracle"
        );

        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        for (step, &id) in log.iter().enumerate() {
            tree.insert(&store, id);
            cache.on_insert(&rule, &store, &tree, id);
            assert_eq!(
                cache.tip(),
                rule.select_tip(&store, &tree),
                "seed {seed} step {step}: replay diverged from full scan"
            );
        }
        assert_eq!(
            cache.chain(),
            Blockchain::from_tip(&store, cbt.selected_tip()),
            "seed {seed}: sequential replay chain ≠ published chain"
        );
    }
}
