//! Protocol A end to end: consensus-from-Θ_F,k=1 driven through the
//! `ConcurrentBlockTree`, judged by its recorded evidence.
//!
//! `run_consensus_workload` races N real proposer threads (and M reader
//! threads) through chained `TreeConsensus` instances on one shared tree +
//! oracle pair; these tests assert, per seed:
//!
//! * the four Def. 4.1 properties (Termination / Integrity / Agreement /
//!   Validity) on every round's report;
//! * Thm. 3.2 k-fork coherence of the shared oracle;
//! * membership-is-path for k = 1 — the committed tree is exactly the
//!   decided chain `b0⌢d1⌢…⌢dR`;
//! * linearizability of the recorded history (proposes replayed as the
//!   refined appends of their decisions, loser decides ordered after the
//!   winner's graft, reads against the published chain).

use btadt_core::criteria::local_monotonic_read;
use btadt_core::history::{Invocation, Response};
use btadt_core::ids::BlockId;
use btadt_core::linearizability::{
    check_linearizable, check_linearizable_windowed, Linearizability, DEFAULT_OP_LIMIT,
};
use btadt_core::score::LengthScore;
use btadt_core::selection::LongestChain;
use btadt_sim::mtrun::{run_consensus_workload, ConsensusConfig};

fn assert_def_4_1(run: &btadt_sim::mtrun::ConsensusRun, seed: u64) {
    for (round, report) in run.reports.iter().enumerate() {
        assert!(report.termination(), "seed {seed} round {round}");
        assert!(
            report.integrity(),
            "seed {seed} round {round}: more than one graft: {:?}",
            report.grafted
        );
        assert!(
            report.agreement(),
            "seed {seed} round {round}: split decisions {:?}",
            report.decisions
        );
        assert!(
            report.validity(),
            "seed {seed} round {round}: decided {:?} ∉ minted {:?}",
            report.decisions,
            report.minted
        );
    }
}

/// Membership-is-path under k = 1: the commit log is exactly the decided
/// chain, in order, and the final published chain carries it.
fn assert_decided_path(run: &btadt_sim::mtrun::ConsensusRun, seed: u64) {
    assert_eq!(
        run.commit_log, run.decisions,
        "seed {seed}: one graft/round"
    );
    let mut expected = vec![BlockId::GENESIS];
    expected.extend(&run.decisions);
    assert_eq!(
        run.final_chain.ids(),
        expected.as_slice(),
        "seed {seed}: the tree is the decided path"
    );
    // Anchor chaining: round r's decision is minted under round r-1's.
    for (r, report) in run.reports.iter().enumerate() {
        let d = report.decided().expect("agreement asserted already");
        assert_eq!(
            run.store.parent(d),
            Some(report.anchor),
            "seed {seed} round {r}: decision chains to its anchor"
        );
        let anchor_expected = if r == 0 {
            BlockId::GENESIS
        } else {
            run.decisions[r - 1]
        };
        assert_eq!(report.anchor, anchor_expected, "seed {seed} round {r}");
    }
}

#[test]
fn consensus_runs_satisfy_def_4_1_across_20_seeds() {
    for seed in 0..20u64 {
        let cfg = ConsensusConfig {
            seed,
            proposers: 3,
            readers: 2,
            rounds: 2,
            reads_per_round: 4,
            rate: None,
        };
        let run = run_consensus_workload(LongestChain, &cfg);
        assert!(
            run.history.validate().is_empty(),
            "seed {seed}: recorded history is well-formed"
        );
        assert!(
            run.fork_coherent,
            "seed {seed}: Thm. 3.2 on the shared oracle"
        );
        assert_def_4_1(&run, seed);
        assert_decided_path(&run, seed);
        // History-level agreement: every recorded decide event carries one
        // of the round decisions — the evidence and the reports concur.
        assert!(
            run.history.decisions().all(|d| run.decisions.contains(&d)),
            "seed {seed}: a recorded decide disagrees with the reports"
        );
        // 2 rounds × (3 proposes + 2×4 reads) = 22 ops ≤ the exhaustive cap.
        let r = check_linearizable(&run.history, &run.store, &LongestChain);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

/// Longer runs clear the exhaustive cap; the barrier between rounds
/// guarantees the quiescent cuts the windowed checker needs.
#[test]
fn long_consensus_runs_check_via_quiescent_windows() {
    for seed in 100..110u64 {
        let cfg = ConsensusConfig {
            seed,
            proposers: 4,
            readers: 2,
            rounds: 5,
            reads_per_round: 4,
            rate: None,
        };
        let run = run_consensus_workload(LongestChain, &cfg);
        assert_def_4_1(&run, seed);
        assert_decided_path(&run, seed);
        let r =
            check_linearizable_windowed(&run.history, &run.store, &LongestChain, DEFAULT_OP_LIMIT);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
        // Reader evidence: per-process chain lengths never shrink.
        let verdict = local_monotonic_read::check(&run.history, &LengthScore);
        assert!(verdict.holds, "seed {seed}: {:?}", verdict.violations);
    }
}

/// The history's decide events agree with the reports: same decisions,
/// exactly one grafted propose per round, and every read invoked after a
/// decide's response observes the decided block.
#[test]
fn recorded_decide_events_match_the_reports() {
    let cfg = ConsensusConfig {
        seed: 42,
        proposers: 4,
        readers: 2,
        rounds: 3,
        reads_per_round: 5,
        rate: None,
    };
    let run = run_consensus_workload(LongestChain, &cfg);
    assert_eq!(run.history.proposes().count(), 4 * 3);
    let mut grafted_per_decision = std::collections::HashMap::new();
    for op in run.history.proposes() {
        let Some(Response::Decided { block, grafted }) = op.response else {
            panic!("proposes complete with Decided responses");
        };
        assert!(
            run.decisions.contains(&block),
            "decided {block} is one of the round decisions"
        );
        *grafted_per_decision.entry(block).or_insert(0usize) += grafted as usize;
    }
    for d in &run.decisions {
        assert_eq!(grafted_per_decision[d], 1, "exactly one graft decided {d}");
    }
    // Graft-before-decide, observed from the reads: any read invoked
    // after a decide's response contains the decided block.
    for op in run.history.ops() {
        let Some(Response::Decided { block, .. }) = op.response else {
            continue;
        };
        let decided_at = op.responded_at.expect("complete");
        for read in run.history.reads() {
            if read.invoked_at > decided_at {
                if let Some(Response::Chain(chain)) = &read.response {
                    assert!(
                        chain.ids().contains(&block),
                        "read at {:?} misses block {block} decided at {decided_at:?}",
                        read.invoked_at
                    );
                }
            }
        }
    }
}

/// Proposer counts from solo to heavy contention, heterogeneous configs:
/// the decide path must hold shape everywhere.
#[test]
fn consensus_holds_across_thread_counts() {
    for (seed, proposers, readers, rounds) in
        [(7u64, 1usize, 0usize, 4usize), (8, 2, 1, 3), (9, 6, 3, 2)]
    {
        let cfg = ConsensusConfig {
            seed,
            proposers,
            readers,
            rounds,
            reads_per_round: 3,
            rate: None,
        };
        let run = run_consensus_workload(LongestChain, &cfg);
        assert_def_4_1(&run, seed);
        assert_decided_path(&run, seed);
        assert!(run.fork_coherent, "seed {seed}");
        assert_eq!(run.decisions.len(), rounds, "seed {seed}");
        let r =
            check_linearizable_windowed(&run.history, &run.store, &LongestChain, DEFAULT_OP_LIMIT);
        assert!(
            matches!(r, Linearizability::Linearizable(_)),
            "seed {seed}: {r:?}"
        );
    }
}

/// The loser mints are part of the evidence too: they sit in the arena as
/// non-member orphans parented at their round's anchor — semantically
/// `P`-rejected mints, never members.
#[test]
fn loser_mints_stay_non_member_orphans() {
    let cfg = ConsensusConfig {
        seed: 3,
        proposers: 4,
        readers: 0,
        rounds: 2,
        reads_per_round: 0,
        rate: None,
    };
    let run = run_consensus_workload(LongestChain, &cfg);
    let committed: std::collections::HashSet<_> = run.commit_log.iter().copied().collect();
    for (round, report) in run.reports.iter().enumerate() {
        for minted in report.minted.iter().flatten() {
            assert_eq!(
                run.store.parent(*minted),
                Some(report.anchor),
                "round {round}: every mint hangs off the anchor"
            );
            let is_winner = Some(*minted) == report.decided();
            assert_eq!(
                committed.contains(minted),
                is_winner,
                "round {round}: only the winner is a member"
            );
        }
    }
    // And the history agrees about which proposes are which.
    for op in run.history.proposes() {
        assert!(matches!(
            (&op.invocation, &op.response),
            (Invocation::Propose { .. }, Some(Response::Decided { .. }))
        ));
    }
}
