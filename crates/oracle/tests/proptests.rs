//! Property-based tests for the token oracles: tape statistics, k-fork
//! coherence under arbitrary schedules (Thm. 3.2), grant/consume
//! accounting, purge idempotence, and hierarchy monotonicity in `k`.

use btadt_core::ids::BlockId;
use btadt_oracle::{
    purge_unsuccessful, run_workload, Merits, Tape, ThetaOracle, TokenGrant, WorkloadConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ── Tapes ───────────────────────────────────────────────────────────

    #[test]
    fn tape_pop_equals_random_access(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut tape = Tape::new(seed, p);
        let reference = Tape::new(seed, p);
        for j in 0..200u64 {
            prop_assert_eq!(tape.pop(), reference.cell_at(j));
        }
        prop_assert_eq!(tape.position(), 200);
    }

    #[test]
    fn tape_frequency_tracks_probability(seed in any::<u64>(), p in 0.05f64..0.95) {
        let tape = Tape::new(seed, p);
        let n = 8_000u64;
        let hits = (0..n).filter(|&j| tape.cell_at(j).is_token()).count() as f64;
        let freq = hits / n as f64;
        prop_assert!((freq - p).abs() < 0.05, "p={p} freq={freq}");
    }

    // ── Thm. 3.2: k-fork coherence under arbitrary schedules ────────────

    #[test]
    fn fork_coherence_is_invariant(
        seed in any::<u64>(),
        k in 1u32..5,
        script in prop::collection::vec((0usize..3, 0u32..4, any::<bool>()), 0..200),
    ) {
        let mut oracle = ThetaOracle::frugal(k, Merits::uniform(3), 3.0, seed);
        let mut pending: Vec<TokenGrant> = Vec::new();
        let mut next_block = 1u32;
        for (who, parent, consume) in script {
            if consume {
                if let Some(g) = pending.pop() {
                    oracle.consume_token(&g, BlockId(next_block));
                    next_block += 1;
                }
            } else if let Some(g) = oracle.get_token(who, BlockId(parent)) {
                pending.push(g);
            }
            prop_assert!(oracle.fork_coherent());
            // Every K set is bounded by k.
            for (_, deg) in oracle.fork_degrees() {
                prop_assert!(deg <= k as usize);
            }
        }
    }

    #[test]
    fn consume_accounting(
        seed in any::<u64>(),
        attempts in 1u64..200,
    ) {
        let mut oracle = ThetaOracle::prodigal(Merits::uniform(2), 1.0, seed);
        let mut consumed = 0u64;
        for a in 0..attempts {
            if let Some(g) = oracle.get_token((a % 2) as usize, BlockId::GENESIS) {
                oracle.consume_token(&g, BlockId(a as u32 + 1));
                consumed += 1;
            }
        }
        prop_assert_eq!(oracle.tokens_granted(), consumed);
        prop_assert_eq!(oracle.tokens_consumed() as u64, consumed);
        prop_assert_eq!(oracle.consumed_for(BlockId::GENESIS).len() as u64, consumed);
    }

    #[test]
    fn double_consume_is_always_inert(seed in any::<u64>()) {
        let mut oracle = ThetaOracle::prodigal(Merits::uniform(1), 1.0, seed);
        let g = oracle.get_token(0, BlockId::GENESIS).unwrap();
        let first = oracle.consume_token(&g, BlockId(1));
        for replay_block in [1u32, 2, 3] {
            let again = oracle.consume_token(&g, BlockId(replay_block));
            prop_assert_eq!(&again, &first, "spent tokens are inert");
        }
    }

    // ── Workload runner & purging ───────────────────────────────────────

    #[test]
    fn purge_is_idempotent_and_complete(seed in 0u64..500) {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(3), 2.0, seed);
        let out = run_workload(
            oracle,
            &WorkloadConfig {
                processes: 3,
                steps: 80,
                seed,
                ..Default::default()
            },
        );
        let once = purge_unsuccessful(&out.raw_history);
        let twice = purge_unsuccessful(&once);
        prop_assert_eq!(once.len(), twice.len());
        // No failed appends survive.
        for op in once.ops() {
            prop_assert!(!matches!(
                op.response,
                Some(btadt_core::history::Response::Appended(false))
            ));
        }
        // Reads are preserved exactly.
        prop_assert_eq!(once.reads().count(), out.raw_history.reads().count());
    }

    #[test]
    fn fork_degrees_monotone_in_k(seed in 0u64..200) {
        let run = |k: u32| {
            let oracle = ThetaOracle::frugal(k, Merits::uniform(4), 2.0, seed);
            run_workload(
                oracle,
                &WorkloadConfig {
                    seed,
                    steps: 150,
                    ..Default::default()
                },
            )
            .max_fork_degree
        };
        let d1 = run(1);
        prop_assert!(d1 <= 1);
        prop_assert!(run(2) <= 2);
        prop_assert!(run(3) <= 3);
    }

    #[test]
    fn workload_histories_always_well_formed(
        seed in any::<u64>(),
        procs in 1u32..6,
        latency in 1u64..10,
    ) {
        let oracle = ThetaOracle::prodigal(Merits::uniform(procs as usize), 2.0, seed);
        let out = run_workload(
            oracle,
            &WorkloadConfig {
                processes: procs,
                steps: 60,
                max_latency: latency,
                seed,
                ..Default::default()
            },
        );
        prop_assert!(out.raw_history.validate().is_empty());
        // Final chain is never empty and starts at genesis.
        prop_assert_eq!(out.final_chain.ids()[0], BlockId::GENESIS);
    }

    // ── Merit algebra ───────────────────────────────────────────────────

    #[test]
    fn alphas_always_normalize(weights in prop::collection::vec(0.01f64..100.0, 1..10)) {
        let merits = Merits::from_weights(weights);
        let sum: f64 = merits.alphas().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for i in 0..merits.len() {
            prop_assert!(merits.alpha(i) > 0.0);
            prop_assert!(merits.token_probability(i, 0.5) <= 1.0);
        }
    }
}
