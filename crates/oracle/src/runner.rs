//! Concurrent workload driver over `R(BT-ADT, Θ)`.
//!
//! Generates the history sets `Ĥ(R(BT-ADT, Θ))` that the hierarchy
//! experiments (Figs. 8/14, Thms. 3.1/3.3/3.4) sample: `n` sequential
//! processes issue overlapping `append`/`read` operations against one
//! refined BlockTree; an append *captures the selected tip at invocation*
//! and settles with the oracle at response time. Overlap is therefore the
//! fork engine — two appends that both captured `b_h` race for `K[h]`, and
//! the oracle's `k` decides how many win.
//!
//! Everything is driven by SplitMix64 streams: same config ⇒ same history.
//!
//! Tip captures (`tree.selected_tip()` at operation start) and the final
//! reads ride the incremental selection cache: per-tick cost is O(1)
//! regardless of how large the tree has grown, so `steps` can scale
//! without the driver itself becoming the bottleneck.

use crate::refinement::{purge_unsuccessful, RefinedBlockTree};
use crate::theta::ThetaOracle;
use btadt_core::block::Payload;
use btadt_core::chain::Blockchain;
use btadt_core::history::History;
use btadt_core::ids::{mix2, splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::selection::LongestChain;
use btadt_core::store::BlockStore;
use btadt_core::validity::AcceptAll;

/// Parameters of a workload run.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of sequential processes.
    pub processes: u32,
    /// Logical ticks of the main phase.
    pub steps: u64,
    /// Per-tick probability that an idle process starts an `append`.
    pub append_prob: f64,
    /// Per-tick probability that an idle process starts a `read`.
    pub read_prob: f64,
    /// Operation latency is uniform in `1..=max_latency` ticks; larger
    /// latency ⇒ more overlap ⇒ more fork pressure.
    pub max_latency: u64,
    /// Seed for all workload randomness (oracle tapes are seeded
    /// separately, in the oracle itself).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            processes: 4,
            steps: 400,
            append_prob: 0.20,
            read_prob: 0.15,
            max_latency: 6,
            seed: 0xB70C_7EE5,
        }
    }
}

/// Outcome of a workload run.
pub struct WorkloadOutput {
    /// The purged history `Ĥ` (unsuccessful appends removed).
    pub history: History,
    /// The raw history including failed appends.
    pub raw_history: History,
    /// The block arena (needed by the criteria checkers).
    pub store: BlockStore,
    /// The final `read()` result.
    pub final_chain: Blockchain,
    /// Number of tree vertices with ≥ 2 children *in the tree* (forks).
    pub fork_points: usize,
    /// Largest branching degree observed.
    pub max_fork_degree: usize,
    /// Appends that returned `true` / `false`.
    pub successful_appends: usize,
    pub failed_appends: usize,
    /// Recommended convergence cut: the last mid-run response time; the
    /// quiescent tail reads all respond after it.
    pub suggested_cut: Time,
}

#[derive(Clone, Copy)]
enum OpKind {
    Append { parent: BlockId },
    Read,
}

#[derive(Clone, Copy)]
struct InFlight {
    kind: OpKind,
    started: Time,
    finishes: u64,
}

/// Runs the workload against the given oracle, returning the recorded
/// histories and fork statistics.
pub fn run_workload(oracle: ThetaOracle, cfg: &WorkloadConfig) -> WorkloadOutput {
    assert!(cfg.processes > 0 && cfg.steps > 0 && cfg.max_latency > 0);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    let n = cfg.processes as usize;
    let mut in_flight: Vec<Option<InFlight>> = vec![None; n];
    // Last response time per process: sequential processes must not start
    // a new op before their previous one responded (well-formed histories).
    let mut last_resp: Vec<u64> = vec![0; n];
    let mut rng_stream = 0u64;
    let mut draw = |seed: u64| {
        rng_stream += 1;
        splitmix64_at(mix2(seed, 0x5EED), rng_stream)
    };
    let to_unit = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;

    let mut last_response = Time::ZERO;
    for t in 1..=cfg.steps {
        // Complete operations due this tick (process order: deterministic).
        for p in 0..n {
            let due = matches!(in_flight[p], Some(op) if op.finishes <= t);
            if !due {
                continue;
            }
            let op = in_flight[p].take().expect("checked above");
            // Align the tree clock so the response lands at `t`.
            let now = tree.now().0;
            if now < t {
                tree.advance_time(t - now - 1);
            }
            match op.kind {
                OpKind::Append { parent } => {
                    tree.append_at(
                        ProcessId(p as u32),
                        p,
                        parent,
                        Payload::Opaque(t),
                        op.started,
                    );
                }
                OpKind::Read => {
                    tree.read_at(ProcessId(p as u32), op.started);
                }
            }
            last_response = tree.now();
            last_resp[p] = tree.now().0;
        }
        // Start new operations on idle processes.
        for p in 0..n {
            if in_flight[p].is_some() {
                continue;
            }
            let coin = to_unit(draw(cfg.seed ^ p as u64));
            let kind = if coin < cfg.append_prob {
                Some(OpKind::Append {
                    parent: tree.selected_tip(),
                })
            } else if coin < cfg.append_prob + cfg.read_prob {
                Some(OpKind::Read)
            } else {
                None
            };
            if let Some(kind) = kind {
                let latency = 1 + draw(cfg.seed ^ 0xA11) % cfg.max_latency;
                let start = t.max(last_resp[p] + 1);
                in_flight[p] = Some(InFlight {
                    kind,
                    started: Time(start),
                    finishes: start + latency,
                });
            }
        }
    }

    // Post-cut tail. Ever-Growing Tree quantifies over `E(a*, r*)` —
    // histories where appends never stop — so the trace must keep growing
    // past the convergence cut: (a) a few *non-overlapping* appends (atomic
    // at the current tip: no new forks), then (b) two read rounds per
    // process, which now strictly out-score every pre-cut read and all sit
    // on one grown branch.
    let cut = last_response;
    let now = tree.now().0;
    tree.advance_time(cfg.max_latency + cfg.steps.max(now) - now + 1);
    let mut grown = 0u32;
    let mut guard = 0u32;
    while grown < 3 && guard < 1_000 {
        let p = (guard as usize) % n;
        if tree
            .append(ProcessId(p as u32), Payload::Opaque(u64::from(guard)))
            .succeeded()
        {
            grown += 1;
        }
        guard += 1;
    }
    for round in 0..2 {
        for p in 0..n {
            let _ = round;
            let started = tree.now().tick();
            tree.advance_time(1);
            tree.read_at(ProcessId(p as u32), started);
        }
    }

    // Fork statistics over the *tree* (membership), not the raw store.
    let store = tree.store();
    let mut fork_points = 0;
    let mut max_fork_degree = 0;
    for id in store.ids() {
        if !tree.blocktree().tree().contains(id) {
            continue;
        }
        let deg = store
            .children(id)
            .iter()
            .filter(|&&c| tree.blocktree().tree().contains(c))
            .count();
        if deg >= 2 {
            fork_points += 1;
        }
        max_fork_degree = max_fork_degree.max(deg);
    }

    let raw_history = tree.history().clone();
    let history = purge_unsuccessful(&raw_history);
    let successful_appends = history.append_count();
    let failed_appends = raw_history.append_count() - successful_appends;
    let final_chain = tree.read_quiet();
    WorkloadOutput {
        history,
        raw_history,
        store: store.clone(),
        final_chain,
        fork_points,
        max_fork_degree,
        successful_appends,
        failed_appends,
        suggested_cut: cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merit::Merits;
    use btadt_core::criteria::{
        check_eventual_consistency, check_strong_consistency, ConsistencyParams, LivenessMode,
    };
    use btadt_core::score::LengthScore;
    use btadt_core::validity::AcceptAll;

    fn cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            processes: 4,
            steps: 300,
            append_prob: 0.3,
            read_prob: 0.2,
            max_latency: 5,
            seed,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let o = ThetaOracle::prodigal(Merits::uniform(4), 2.0, 7);
            let out = run_workload(o, &cfg(seed));
            (
                out.successful_appends,
                out.failed_appends,
                out.fork_points,
                out.final_chain.len(),
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds explore different runs");
    }

    #[test]
    fn k1_workload_never_forks_and_is_strongly_consistent() {
        for seed in [3u64, 4, 5] {
            let o = ThetaOracle::frugal(1, Merits::uniform(4), 2.0, seed);
            let out = run_workload(o, &cfg(seed));
            assert_eq!(out.fork_points, 0, "k=1 admits no forks");
            assert!(out.successful_appends > 0, "workload must make progress");
            let params = ConsistencyParams {
                store: &out.store,
                predicate: &AcceptAll,
                score: &LengthScore,
                liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
            };
            let sc = check_strong_consistency(&out.history, &params);
            assert!(sc.holds(), "seed {seed}: {sc}");
        }
    }

    #[test]
    fn prodigal_workload_forks_but_converges() {
        let mut saw_fork = false;
        let mut saw_sp_violation = false;
        for seed in [1u64, 2, 3, 4, 5] {
            let o = ThetaOracle::prodigal(Merits::uniform(4), 2.0, seed);
            let out = run_workload(o, &cfg(seed));
            saw_fork |= out.fork_points > 0;
            let params = ConsistencyParams {
                store: &out.store,
                predicate: &AcceptAll,
                score: &LengthScore,
                liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
            };
            let ec = check_eventual_consistency(&out.history, &params);
            assert!(ec.holds(), "seed {seed}: shared tree must converge\n{ec}");
            let sc = check_strong_consistency(&out.history, &params);
            saw_sp_violation |= !sc.holds();
        }
        assert!(saw_fork, "Θ_P under overlap must fork somewhere");
        assert!(
            saw_sp_violation,
            "forked runs must violate Strong Prefix somewhere"
        );
    }

    #[test]
    fn k_bounds_fork_degree() {
        for &k in &[1u32, 2, 3] {
            for seed in [10u64, 11] {
                let o = ThetaOracle::frugal(k, Merits::uniform(4), 2.0, seed);
                let out = run_workload(o, &cfg(seed));
                assert!(
                    out.max_fork_degree <= k as usize,
                    "k={k}: fork degree {} exceeds bound",
                    out.max_fork_degree
                );
            }
        }
    }

    #[test]
    fn histories_are_well_formed() {
        let o = ThetaOracle::prodigal(Merits::uniform(4), 2.0, 99);
        let out = run_workload(o, &cfg(99));
        assert!(
            out.raw_history.validate().is_empty(),
            "{:?}",
            out.raw_history.validate()
        );
    }
}
