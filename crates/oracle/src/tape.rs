//! The oracle's pseudorandom tapes (§3.2.1).
//!
//! "For each merit α_i, the state of the token oracle embeds an infinite
//! tape where each cell of the tape contains either `tkn` or `⊥` … each tape
//! contains a pseudorandom sequence of values in {tkn, ⊥} depending on α_i",
//! indistinguishable from a Bernoulli sequence with
//! `P[cell = tkn] = p_{α_i}` (footnote 3).
//!
//! A [`Tape`] realizes this literally: cell `j` is `tkn` iff
//! `SplitMix64(seed, j) < p·2⁶⁴`. Random access is O(1), the tape never
//! materializes, and two oracles built from the same seed are identical —
//! determinism the whole workspace relies on.

use btadt_core::ids::splitmix64_at;

/// One cell of a tape: the mapping functions `m(α_i) ∈ {tkn, ⊥}*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cell {
    /// `tkn` — the oracle grants a token.
    Token,
    /// `⊥` — no token this attempt.
    Bottom,
}

impl Cell {
    /// True iff the cell holds `tkn`.
    #[inline]
    pub fn is_token(self) -> bool {
        matches!(self, Cell::Token)
    }
}

/// An infinite Bernoulli(`p`) tape with `pop`/`head` (§3.2.1), evaluated
/// lazily by SplitMix64.
#[derive(Clone, Debug)]
pub struct Tape {
    seed: u64,
    /// `p` scaled to u64: cell j is `tkn` iff `hash(seed, j) < threshold`.
    threshold: u64,
    /// Number of cells already popped.
    position: u64,
    /// The underlying probability, kept for reporting.
    p: f64,
}

impl Tape {
    /// Creates the tape for one merit value: `p` is the per-cell token
    /// probability `p_{α_i}` (clamped to [0, 1]).
    pub fn new(seed: u64, p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * (u64::MAX as f64)) as u64
        };
        Tape {
            seed,
            threshold,
            position: 0,
            p,
        }
    }

    /// The cell at absolute index `j` (independent of the read position).
    #[inline]
    pub fn cell_at(&self, j: u64) -> Cell {
        if splitmix64_at(self.seed, j) < self.threshold {
            Cell::Token
        } else {
            Cell::Bottom
        }
    }

    /// `head(tape)`: the current first cell, without consuming it.
    #[inline]
    pub fn head(&self) -> Cell {
        self.cell_at(self.position)
    }

    /// `pop(tape)`: consumes and returns the current first cell.
    #[inline]
    pub fn pop(&mut self) -> Cell {
        let c = self.head();
        self.position += 1;
        c
    }

    /// Number of cells consumed so far.
    #[inline]
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The per-cell token probability.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Index of the next `tkn` cell at or after the current position
    /// (useful for simulators that jump straight to the next success).
    /// Returns `None` if no token within `limit` cells.
    pub fn next_token_within(&self, limit: u64) -> Option<u64> {
        (self.position..self.position + limit).find(|&j| self.cell_at(j).is_token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_advances_head_does_not() {
        let mut t = Tape::new(42, 0.5);
        let h0 = t.head();
        assert_eq!(t.head(), h0, "head is idempotent");
        let p0 = t.pop();
        assert_eq!(p0, h0);
        assert_eq!(t.position(), 1);
    }

    #[test]
    fn deterministic_across_clones_and_reconstruction() {
        let mut a = Tape::new(7, 0.3);
        let mut b = Tape::new(7, 0.3);
        for _ in 0..1000 {
            assert_eq!(a.pop(), b.pop());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tape::new(1, 0.5);
        let b = Tape::new(2, 0.5);
        let same = (0..256).filter(|&j| a.cell_at(j) == b.cell_at(j)).count();
        assert!(same < 256, "independent tapes must not coincide");
    }

    #[test]
    fn probability_zero_never_tokens() {
        let mut t = Tape::new(3, 0.0);
        assert!((0..1000).all(|_| !t.pop().is_token()));
    }

    #[test]
    fn probability_one_always_tokens() {
        let mut t = Tape::new(3, 1.0);
        assert!((0..1000).all(|_| t.pop().is_token()));
    }

    #[test]
    fn clamps_out_of_range_probability() {
        assert_eq!(Tape::new(0, -0.5).probability(), 0.0);
        assert_eq!(Tape::new(0, 1.5).probability(), 1.0);
    }

    #[test]
    fn empirical_frequency_matches_p() {
        for &p in &[0.1f64, 0.25, 0.5, 0.9] {
            let t = Tape::new(0xFEED, p);
            let n = 20_000u64;
            let hits = (0..n).filter(|&j| t.cell_at(j).is_token()).count() as f64;
            let freq = hits / n as f64;
            assert!(
                (freq - p).abs() < 0.02,
                "p={p}: measured {freq}, expected within ±0.02"
            );
        }
    }

    #[test]
    fn no_long_range_bias() {
        // The second half of a window should hit at the same rate as the
        // first half (stationarity of the Bernoulli stream).
        let t = Tape::new(0xBEE, 0.3);
        let n = 20_000u64;
        let first = (0..n).filter(|&j| t.cell_at(j).is_token()).count() as f64;
        let second = (n..2 * n).filter(|&j| t.cell_at(j).is_token()).count() as f64;
        assert!(((first - second) / n as f64).abs() < 0.02);
    }

    #[test]
    fn next_token_within_finds_first() {
        let mut t = Tape::new(99, 0.2);
        match t.next_token_within(10_000) {
            Some(j) => {
                assert!(t.cell_at(j).is_token());
                for i in t.position()..j {
                    assert!(!t.cell_at(i).is_token());
                }
            }
            None => panic!("p=0.2 must hit within 10k cells"),
        }
        // After popping past the token, the next search starts fresh.
        for _ in 0..=t.next_token_within(10_000).unwrap() {
            t.pop();
        }
        assert!(t.next_token_within(10_000).is_some());
    }

    #[test]
    fn next_token_within_respects_limit() {
        let t = Tape::new(3, 0.0);
        assert_eq!(t.next_token_within(1000), None);
    }
}
