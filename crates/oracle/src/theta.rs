//! The token oracle Θ-ADT (§3.2, Defs. 3.5–3.6).
//!
//! The oracle is "the only generator of valid blocks": a process calls
//! `getToken(obj_h, obj_ℓ)` to try to win the right to chain a new block
//! under `obj_h`; the oracle pops the caller's merit tape and grants a token
//! with probability `p_{α_i}`. Consuming the token
//! (`consumeToken(obj^tknh_ℓ)`) inserts the block into the per-object set
//! `K[h]`, which holds **at most k** elements — the oracle's
//! synchronization power: at most `k` branches can sprout from any block.
//!
//! * Θ_F ("frugal", Def. 3.5) — finite `k`;
//! * Θ_P ("prodigal", Def. 3.6) — `k = ∞`, i.e. validation only, no fork
//!   control.
//!
//! Thm. 3.2 (k-Fork Coherence, Def. 3.9) holds *by construction*: `add`
//! refuses once `|K[h]| = k`, and each token is consumed at most once.

use crate::merit::Merits;
use crate::tape::Tape;
use btadt_core::hierarchy::OracleModel;
use btadt_core::ids::{mix2, BlockId};
use std::collections::{HashMap, HashSet};

/// The fork bound `k` of the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KBound {
    /// Frugal: at most `k` consumed tokens per object.
    Finite(u32),
    /// Prodigal: unbounded.
    Infinite,
}

impl KBound {
    /// May another token be consumed given `current` already consumed?
    #[inline]
    pub fn admits(&self, current: usize) -> bool {
        match self {
            KBound::Finite(k) => current < *k as usize,
            KBound::Infinite => true,
        }
    }
}

/// A granted token `tkn_h`: the right to chain one block under `parent`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenGrant {
    /// The object `h` the token binds to.
    pub parent: BlockId,
    /// Unique token identity (element of the countable set `T`).
    pub serial: u64,
    /// Merit index of the winning process.
    pub merit_index: u32,
}

/// The Θ oracle state: merit tapes + the `K[]` array of bounded sets.
#[derive(Clone, Debug)]
pub struct ThetaOracle {
    k: KBound,
    merits: Merits,
    rate: f64,
    tapes: Vec<Tape>,
    /// `K[h]`: blocks whose token for parent `h` was consumed.
    consumed: HashMap<BlockId, Vec<BlockId>>,
    /// Serial counter (token identity source).
    next_serial: u64,
    /// Tokens already consumed (each token is consumable at most once).
    spent: HashSet<u64>,
    /// Outstanding grants: serial → parent it was granted for.
    grants: HashMap<u64, BlockId>,
}

impl ThetaOracle {
    /// A frugal oracle Θ_F,k.
    pub fn frugal(k: u32, merits: Merits, rate: f64, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self::with_bound(KBound::Finite(k), merits, rate, seed)
    }

    /// A prodigal oracle Θ_P (= Θ_F with k = ∞, Def. 3.6).
    pub fn prodigal(merits: Merits, rate: f64, seed: u64) -> Self {
        Self::with_bound(KBound::Infinite, merits, rate, seed)
    }

    fn with_bound(k: KBound, merits: Merits, rate: f64, seed: u64) -> Self {
        let tapes = (0..merits.len())
            .map(|i| {
                let p = merits.token_probability(i, rate);
                Tape::new(mix2(seed, i as u64), p)
            })
            .collect();
        ThetaOracle {
            k,
            merits,
            rate,
            tapes,
            consumed: HashMap::new(),
            next_serial: 0,
            spent: HashSet::new(),
            grants: HashMap::new(),
        }
    }

    /// The fork bound.
    pub fn k(&self) -> KBound {
        self.k
    }

    /// The oracle model descriptor for hierarchy bookkeeping.
    pub fn model(&self) -> OracleModel {
        match self.k {
            KBound::Finite(k) => OracleModel::Frugal { k },
            KBound::Infinite => OracleModel::Prodigal,
        }
    }

    /// The merit vector.
    pub fn merits(&self) -> &Merits {
        &self.merits
    }

    /// The global rate (difficulty knob).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// `getToken(obj_h, obj_ℓ)`: pops the invoker's tape; on `tkn` returns a
    /// grant binding a fresh token to `parent`, else `None` (`⊥`).
    pub fn get_token(&mut self, merit_index: usize, parent: BlockId) -> Option<TokenGrant> {
        let cell = self.tapes[merit_index].pop();
        if cell.is_token() {
            let serial = self.next_serial;
            self.next_serial += 1;
            self.grants.insert(serial, parent);
            Some(TokenGrant {
                parent,
                serial,
                merit_index: merit_index as u32,
            })
        } else {
            None
        }
    }

    /// `consumeToken(obj^tknh_ℓ)`: inserts `block` into `K[parent]` if the
    /// token is genuine (granted for this parent), unspent, and
    /// `|K[parent]| < k`; in every case returns `get(K, h)` — the current
    /// contents of `K[parent]`.
    pub fn consume_token(&mut self, grant: &TokenGrant, block: BlockId) -> Vec<BlockId> {
        let genuine = self.grants.get(&grant.serial) == Some(&grant.parent);
        let unspent = !self.spent.contains(&grant.serial);
        if genuine && unspent {
            self.spent.insert(grant.serial);
            let set = self.consumed.entry(grant.parent).or_default();
            if self.k.admits(set.len()) {
                set.push(block);
            }
        }
        self.consumed_for(grant.parent).to_vec()
    }

    /// Current contents of `K[parent]`.
    pub fn consumed_for(&self, parent: BlockId) -> &[BlockId] {
        self.consumed.get(&parent).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tape cells the invoker has consumed (its attempt count).
    pub fn attempts(&self, merit_index: usize) -> u64 {
        self.tapes[merit_index].position()
    }

    /// Number of tokens granted so far.
    pub fn tokens_granted(&self) -> u64 {
        self.next_serial
    }

    /// Number of tokens consumed so far.
    pub fn tokens_consumed(&self) -> usize {
        self.spent.len()
    }

    /// Def. 3.9 / Thm. 3.2: no object ever has more than `k` consumed
    /// tokens. True by construction; exposed so experiments can assert it.
    pub fn fork_coherent(&self) -> bool {
        match self.k {
            KBound::Infinite => true,
            KBound::Finite(k) => self.consumed.values().all(|v| v.len() <= k as usize),
        }
    }

    /// Parents that have at least one consumed token, with their fork
    /// degree (for fork-rate experiments).
    pub fn fork_degrees(&self) -> impl Iterator<Item = (BlockId, usize)> + '_ {
        self.consumed.iter().map(|(&p, v)| (p, v.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(k: KBound) -> ThetaOracle {
        // rate 2.0 over 2 uniform merits → p = 1.0 each: every attempt wins.
        let merits = Merits::uniform(2);
        match k {
            KBound::Finite(k) => ThetaOracle::frugal(k, merits, 2.0, 42),
            KBound::Infinite => ThetaOracle::prodigal(merits, 2.0, 42),
        }
    }

    #[test]
    fn get_token_honours_tape() {
        // rate 0 → p = 0 → never a token.
        let mut o = ThetaOracle::prodigal(Merits::uniform(1), 0.0, 1);
        assert!(o.get_token(0, BlockId::GENESIS).is_none());
        assert_eq!(o.attempts(0), 1);
        // p = 1 → always a token.
        let mut o = ThetaOracle::prodigal(Merits::uniform(1), 1.0, 1);
        let g = o.get_token(0, BlockId::GENESIS).unwrap();
        assert_eq!(g.parent, BlockId::GENESIS);
        assert_eq!(o.tokens_granted(), 1);
    }

    #[test]
    fn frugal_k1_admits_single_consume() {
        let mut o = oracle(KBound::Finite(1));
        let g1 = o.get_token(0, BlockId::GENESIS).unwrap();
        let g2 = o.get_token(1, BlockId::GENESIS).unwrap();
        let s1 = o.consume_token(&g1, BlockId(1));
        assert_eq!(s1, vec![BlockId(1)]);
        // Second consume for the same parent: set already full.
        let s2 = o.consume_token(&g2, BlockId(2));
        assert_eq!(s2, vec![BlockId(1)], "K[h] stays at the first block");
        assert!(o.fork_coherent());
    }

    #[test]
    fn frugal_k2_admits_two() {
        let mut o = oracle(KBound::Finite(2));
        let g1 = o.get_token(0, BlockId::GENESIS).unwrap();
        let g2 = o.get_token(1, BlockId::GENESIS).unwrap();
        let g3 = o.get_token(0, BlockId::GENESIS).unwrap();
        o.consume_token(&g1, BlockId(1));
        o.consume_token(&g2, BlockId(2));
        let s = o.consume_token(&g3, BlockId(3));
        assert_eq!(s, vec![BlockId(1), BlockId(2)]);
        assert!(o.fork_coherent());
    }

    #[test]
    fn prodigal_admits_unboundedly() {
        let mut o = oracle(KBound::Infinite);
        for i in 1..=50 {
            let g = o.get_token(0, BlockId::GENESIS).unwrap();
            let s = o.consume_token(&g, BlockId(i));
            assert_eq!(s.len(), i as usize);
        }
        assert!(o.fork_coherent());
    }

    #[test]
    fn token_consumable_at_most_once() {
        let mut o = oracle(KBound::Infinite);
        let g = o.get_token(0, BlockId::GENESIS).unwrap();
        o.consume_token(&g, BlockId(1));
        let again = o.consume_token(&g, BlockId(2));
        assert_eq!(again, vec![BlockId(1)], "replayed token is inert");
        assert_eq!(o.tokens_consumed(), 1);
    }

    #[test]
    fn forged_token_rejected() {
        let mut o = oracle(KBound::Infinite);
        let forged = TokenGrant {
            parent: BlockId::GENESIS,
            serial: 999,
            merit_index: 0,
        };
        let s = o.consume_token(&forged, BlockId(1));
        assert!(s.is_empty());
    }

    #[test]
    fn token_bound_to_its_parent() {
        let mut o = oracle(KBound::Infinite);
        let g = o.get_token(0, BlockId::GENESIS).unwrap();
        // Tamper: present the token for a different parent.
        let tampered = TokenGrant {
            parent: BlockId(7),
            ..g.clone()
        };
        let s = o.consume_token(&tampered, BlockId(1));
        assert!(s.is_empty(), "token for b0 is invalid for b7");
        // The genuine grant still works.
        let s = o.consume_token(&g, BlockId(1));
        assert_eq!(s, vec![BlockId(1)]);
    }

    #[test]
    fn per_object_independence() {
        let mut o = oracle(KBound::Finite(1));
        let g1 = o.get_token(0, BlockId::GENESIS).unwrap();
        let g2 = o.get_token(1, BlockId(5)).unwrap();
        o.consume_token(&g1, BlockId(1));
        let s = o.consume_token(&g2, BlockId(2));
        assert_eq!(s, vec![BlockId(2)], "K is per object");
        let degrees: HashMap<_, _> = o.fork_degrees().collect();
        assert_eq!(degrees[&BlockId::GENESIS], 1);
        assert_eq!(degrees[&BlockId(5)], 1);
    }

    #[test]
    fn model_descriptor() {
        assert_eq!(
            oracle(KBound::Finite(1)).model(),
            OracleModel::Frugal { k: 1 }
        );
        assert_eq!(oracle(KBound::Infinite).model(), OracleModel::Prodigal);
    }

    #[test]
    fn merit_weighted_grant_rates() {
        // Process 0 has 3× the merit of process 1; over many attempts its
        // token rate must be ≈3× as high.
        let merits = Merits::from_weights(vec![3.0, 1.0]);
        let mut o = ThetaOracle::prodigal(merits, 0.4, 7);
        let (mut w0, mut w1) = (0u32, 0u32);
        for _ in 0..20_000 {
            if o.get_token(0, BlockId::GENESIS).is_some() {
                w0 += 1;
            }
            if o.get_token(1, BlockId::GENESIS).is_some() {
                w1 += 1;
            }
        }
        let ratio = w0 as f64 / w1 as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "merit ratio 3 should yield ≈3× tokens, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn frugal_rejects_k0() {
        ThetaOracle::frugal(0, Merits::uniform(1), 1.0, 0);
    }

    /// Property-flavoured test for Thm. 3.2: random interleavings of
    /// getToken/consumeToken across objects never break k-fork coherence.
    #[test]
    fn fork_coherence_under_random_schedules() {
        use btadt_core::ids::splitmix64_at;
        for seed in 0..20u64 {
            for &k in &[1u32, 2, 3] {
                let mut o = ThetaOracle::frugal(k, Merits::uniform(3), 3.0, seed);
                let mut pending: Vec<TokenGrant> = Vec::new();
                let mut next_block = 1u32;
                for step in 0..500u64 {
                    let r = splitmix64_at(seed ^ 0xABC, step);
                    let who = (r % 3) as usize;
                    let parent = BlockId((r >> 8) as u32 % 4);
                    if r.is_multiple_of(2) {
                        if let Some(g) = o.get_token(who, parent) {
                            pending.push(g);
                        }
                    } else if let Some(g) = pending.pop() {
                        o.consume_token(&g, BlockId(next_block));
                        next_block += 1;
                    }
                    assert!(o.fork_coherent(), "seed {seed} k {k} step {step}");
                }
            }
        }
    }
}
