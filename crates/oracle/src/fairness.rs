//! Oracle fairness — the §6 future-work thread made executable.
//!
//! The paper: "we only offer a generic merit parameter that can be used to
//! define fairness" (related-work discussion of [1]'s fairness property),
//! and lists "fairness properties for oracles" as future work. The natural
//! definition over our tapes: an oracle is *fair* when each process's share
//! of granted tokens converges to its normalized merit `α_i`.
//!
//! [`token_fairness`] measures grant shares against merit shares over a
//! budget of attempts; [`chain_fairness`] measures the block-production
//! shares of a finished execution (the reward-fairness lens under which
//! FruitChain [27] improves on Bitcoin — see
//! `btadt_protocols::fruitchain`).

use crate::merit::Merits;
use crate::theta::ThetaOracle;
use btadt_core::ids::BlockId;
use btadt_core::store::BlockStore;
use std::fmt;

/// Expected-vs-observed share per merit index.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    /// `(expected α_i, observed share)` per merit index.
    pub shares: Vec<(f64, f64)>,
    /// `max_i |observed_i − α_i|`.
    pub max_deviation: f64,
    /// Total events (token grants / blocks) counted.
    pub total: u64,
}

impl FairnessReport {
    fn from_counts(merits: &Merits, counts: &[u64]) -> Self {
        let total: u64 = counts.iter().sum();
        let shares: Vec<(f64, f64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let observed = if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                };
                (merits.alpha(i), observed)
            })
            .collect();
        let max_deviation = shares
            .iter()
            .map(|(e, o)| (e - o).abs())
            .fold(0.0, f64::max);
        FairnessReport {
            shares,
            max_deviation,
            total,
        }
    }

    /// Fair within tolerance `eps` on every share?
    pub fn is_fair_within(&self, eps: f64) -> bool {
        self.max_deviation <= eps
    }
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fairness over {} events (max deviation {:.4}):",
            self.total, self.max_deviation
        )?;
        for (i, (e, o)) in self.shares.iter().enumerate() {
            writeln!(f, "  α_{i}: expected {e:.3}, observed {o:.3}")?;
        }
        Ok(())
    }
}

/// Grants each process `attempts` getToken calls against a fresh oracle
/// and reports the token-share fairness.
pub fn token_fairness(merits: Merits, rate: f64, seed: u64, attempts: u64) -> FairnessReport {
    let n = merits.len();
    let mut oracle = ThetaOracle::prodigal(merits, rate, seed);
    let mut counts = vec![0u64; n];
    for a in 0..attempts {
        for (i, c) in counts.iter_mut().enumerate() {
            if oracle.get_token(i, BlockId(((a % 7) + 1) as u32)).is_some() {
                *c += 1;
            }
        }
    }
    FairnessReport::from_counts(oracle.merits(), &counts)
}

/// Block-production shares of a finished execution versus merit shares.
/// Counts every minted block (main chain and orphans alike — production
/// fairness, not reward fairness; pass a chain-restricted store view for
/// the latter).
pub fn chain_fairness(store: &BlockStore, merits: &Merits) -> FairnessReport {
    let mut counts = vec![0u64; merits.len()];
    for id in store.ids().skip(1) {
        let m = store.get(id).merit_index as usize;
        if m < counts.len() {
            counts[m] += 1;
        }
    }
    FairnessReport::from_counts(merits, &counts)
}

/// Reward-share fairness over an explicit reward vector (used by the
/// FruitChain comparison, where rewards are per-fruit not per-block).
pub fn reward_fairness(merits: &Merits, rewards: &[u64]) -> FairnessReport {
    assert_eq!(rewards.len(), merits.len());
    FairnessReport::from_counts(merits, rewards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::block::Payload;
    use btadt_core::ids::ProcessId;

    #[test]
    fn uniform_merits_yield_uniform_tokens() {
        let rep = token_fairness(Merits::uniform(4), 1.0, 7, 4_000);
        assert!(rep.total > 3_000, "p = 0.25 each over 16k draws");
        assert!(rep.is_fair_within(0.02), "{rep}");
    }

    #[test]
    fn skewed_merits_yield_skewed_tokens() {
        let rep = token_fairness(Merits::from_weights(vec![3.0, 1.0]), 1.0, 9, 6_000);
        let (e0, o0) = rep.shares[0];
        assert!((e0 - 0.75).abs() < 1e-9);
        assert!((o0 - 0.75).abs() < 0.02, "{rep}");
        assert!(rep.is_fair_within(0.02));
    }

    #[test]
    fn chain_fairness_counts_producers() {
        let merits = Merits::from_weights(vec![1.0, 1.0]);
        let mut store = BlockStore::new();
        let mut parent = BlockId::GENESIS;
        for i in 0..9u32 {
            // producer 0 mints 6, producer 1 mints 3.
            let who = if i % 3 == 2 { 1 } else { 0 };
            parent = store.mint(parent, ProcessId(who), who, 1, i as u64, Payload::Empty);
        }
        let rep = chain_fairness(&store, &merits);
        assert_eq!(rep.total, 9);
        assert!((rep.shares[0].1 - 6.0 / 9.0).abs() < 1e-9);
        assert!(!rep.is_fair_within(0.1), "6:3 against 1:1 merits is unfair");
    }

    #[test]
    fn reward_fairness_explicit_vector() {
        let merits = Merits::uniform(2);
        let rep = reward_fairness(&merits, &[50, 50]);
        assert!(rep.is_fair_within(1e-9));
        let rep = reward_fairness(&merits, &[90, 10]);
        assert!((rep.max_deviation - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_events_report_is_degenerate_but_sane() {
        let rep = reward_fairness(&Merits::uniform(2), &[0, 0]);
        assert_eq!(rep.total, 0);
        assert!(rep.max_deviation <= 0.5);
    }
}
