//! Merit parameters (§3.2.1).
//!
//! "When `getToken` is invoked, the oracle provides a token with a certain
//! probability `p_{α_i} > 0` where `α_i` is a *merit* parameter
//! characterizing the invoking process" — hashing power in Bitcoin (§5.1),
//! memory bandwidth in Ethereum (§5.2), stake in Algorand (§5.4),
//! `1/|M|` for consortium members and `0` for outsiders in Red Belly /
//! Hyperledger (§5.6–5.7).
//!
//! [`Merits`] holds the raw weights and exposes the normalized `α` vector
//! (`Σ α_p = 1` over the positive weights) plus the per-attempt token
//! probability given a global rate (difficulty) parameter.

/// A merit vector over `n` processes/merit-indices.
#[derive(Clone, Debug)]
pub struct Merits {
    weights: Vec<f64>,
    total: f64,
}

impl Merits {
    /// Equal merit for all `n` processes.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one merit");
        Merits {
            weights: vec![1.0; n],
            total: n as f64,
        }
    }

    /// Arbitrary non-negative weights (at least one must be positive).
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one merit");
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        Merits { weights, total }
    }

    /// Consortium merits (§5.6): members share `1/|M|` each, outsiders get 0.
    pub fn consortium(n: usize, members: &[usize]) -> Self {
        assert!(!members.is_empty(), "consortium needs members");
        let mut w = vec![0.0; n];
        for &m in members {
            assert!(m < n, "member index out of range");
            w[m] = 1.0;
        }
        Merits::from_weights(w)
    }

    /// Number of merit indices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized merit `α_i` (`Σ α = 1`).
    pub fn alpha(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }

    /// Raw weight.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Per-attempt token probability `p_{α_i}` for a global `rate`
    /// (the difficulty knob: expected tokens per attempt across everyone),
    /// clamped to [0, 1].
    pub fn token_probability(&self, i: usize, rate: f64) -> f64 {
        (self.alpha(i) * rate).clamp(0.0, 1.0)
    }

    /// The normalized vector.
    pub fn alphas(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.alpha(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_normalizes() {
        let m = Merits::uniform(4);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert!((m.alpha(i) - 0.25).abs() < 1e-12);
        }
        let sum: f64 = m.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_normalizes() {
        let m = Merits::from_weights(vec![3.0, 1.0]);
        assert!((m.alpha(0) - 0.75).abs() < 1e-12);
        assert!((m.alpha(1) - 0.25).abs() < 1e-12);
        assert_eq!(m.weight(0), 3.0);
    }

    #[test]
    fn consortium_zeroes_outsiders() {
        let m = Merits::consortium(4, &[1, 2]);
        assert_eq!(m.alpha(0), 0.0);
        assert!((m.alpha(1) - 0.5).abs() < 1e-12);
        assert!((m.alpha(2) - 0.5).abs() < 1e-12);
        assert_eq!(m.alpha(3), 0.0);
    }

    #[test]
    fn token_probability_scales_and_clamps() {
        let m = Merits::from_weights(vec![1.0, 3.0]);
        assert!((m.token_probability(0, 0.4) - 0.1).abs() < 1e-12);
        assert!((m.token_probability(1, 0.4) - 0.3).abs() < 1e-12);
        assert_eq!(m.token_probability(1, 10.0), 1.0, "clamped");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_weights_rejected() {
        Merits::from_weights(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        Merits::from_weights(vec![1.0, -0.1]);
    }
}
