//! # btadt-oracle — Token oracles Θ and the refinement R(BT-ADT, Θ)
//!
//! Implements §3.2–§3.4 of *Blockchain Abstract Data Type*: the frugal
//! (Θ_F,k) and prodigal (Θ_P) token oracles with their merit-indexed
//! pseudorandom tapes, the refined `append` of Defs. 3.7–3.8, purged
//! history extraction `Ĥ`, and a concurrent workload driver for sampling
//! the hierarchy's history sets.
//!
//! | Paper | Module |
//! |---|---|
//! | §3.2.1 tapes `m(α_i) ∈ {tkn,⊥}*` | [`tape`] |
//! | §3.2.1 merit `α_i`, `p_{α_i}` | [`merit`] |
//! | Defs. 3.5/3.6 Θ_F / Θ_P, Def. 3.9 k-Fork Coherence | [`theta`] |
//! | Defs. 3.7/3.8 refinement, §3.4 `Ĥ` purging | [`refinement`] |
//! | shared-memory atomicity (§4.1 experiments) | [`concurrent`] |
//! | history-set sampling (Figs. 8/14 experiments) | [`runner`] |

pub mod concurrent;
pub mod fairness;
pub mod merit;
pub mod refinement;
pub mod runner;
pub mod tape;
pub mod theta;

pub use concurrent::SharedOracle;
pub use fairness::{chain_fairness, reward_fairness, token_fairness, FairnessReport};
pub use merit::Merits;
pub use refinement::{purge_unsuccessful, AppendOutcome, RefinedBlockTree};
pub use runner::{run_workload, WorkloadConfig, WorkloadOutput};
pub use tape::{Cell, Tape};
pub use theta::{KBound, ThetaOracle, TokenGrant};
