//! Thread-safe oracle access for the shared-memory experiments of §4.1.
//!
//! The Θ-ADT is specified sequentially; when real threads race on it
//! (Protocol A, Fig. 11), each `getToken`/`consumeToken` must be atomic.
//! [`SharedOracle`] provides that via a `parking_lot::Mutex` — the oracle
//! *object* is the linearization point, which is exactly the atomicity the
//! paper's concurrent model grants its base objects. (The dedicated
//! lock-free `consumeToken` cell used to prove the Consensus-number results
//! lives in `btadt-registers`.)

use crate::theta::{KBound, ThetaOracle, TokenGrant};
use btadt_core::hierarchy::OracleModel;
use btadt_core::ids::BlockId;
use parking_lot::Mutex;

/// A `Sync` wrapper around [`ThetaOracle`] with per-operation atomicity.
pub struct SharedOracle {
    inner: Mutex<ThetaOracle>,
}

impl SharedOracle {
    pub fn new(oracle: ThetaOracle) -> Self {
        SharedOracle {
            inner: Mutex::new(oracle),
        }
    }

    /// Atomic `getToken`.
    pub fn get_token(&self, merit_index: usize, parent: BlockId) -> Option<TokenGrant> {
        self.inner.lock().get_token(merit_index, parent)
    }

    /// Atomic `consumeToken`.
    pub fn consume_token(&self, grant: &TokenGrant, block: BlockId) -> Vec<BlockId> {
        self.inner.lock().consume_token(grant, block)
    }

    /// Snapshot of `K[parent]`.
    pub fn consumed_for(&self, parent: BlockId) -> Vec<BlockId> {
        self.inner.lock().consumed_for(parent).to_vec()
    }

    /// The first block consumed into `K[parent]`, without cloning the set.
    /// Under k = 1 this *is* the decision of a consensus instance anchored
    /// at `parent` (Protocol A) — the cheap poll for decide paths and
    /// tests that only need the winner.
    pub fn first_consumed(&self, parent: BlockId) -> Option<BlockId> {
        self.inner.lock().consumed_for(parent).first().copied()
    }

    /// Thm. 3.2 invariant.
    pub fn fork_coherent(&self) -> bool {
        self.inner.lock().fork_coherent()
    }

    /// The fork bound.
    pub fn k(&self) -> KBound {
        self.inner.lock().k()
    }

    /// Hierarchy descriptor.
    pub fn model(&self) -> OracleModel {
        self.inner.lock().model()
    }

    /// Total tokens granted so far.
    pub fn tokens_granted(&self) -> u64 {
        self.inner.lock().tokens_granted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merit::Merits;
    use std::sync::Arc;

    #[test]
    fn threads_race_for_k1_token_exactly_one_wins() {
        for trial in 0..10u64 {
            let oracle = ThetaOracle::frugal(1, Merits::uniform(8), 8.0, trial);
            let shared = Arc::new(SharedOracle::new(oracle));
            let winners = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for who in 0..8usize {
                    let shared = Arc::clone(&shared);
                    handles.push(s.spawn(move || {
                        // Win a token, then try to consume own block.
                        for _ in 0..10_000 {
                            if let Some(g) = shared.get_token(who, BlockId::GENESIS) {
                                let block = BlockId(who as u32 + 1);
                                let set = shared.consume_token(&g, block);
                                return set.contains(&block) as usize;
                            }
                        }
                        0
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .sum::<usize>()
            });
            assert_eq!(winners, 1, "trial {trial}: exactly one thread appends");
            assert!(shared.fork_coherent());
            let consumed = shared.consumed_for(BlockId::GENESIS);
            assert_eq!(consumed.len(), 1);
        }
    }

    #[test]
    fn prodigal_admits_all_threads() {
        let oracle = ThetaOracle::prodigal(Merits::uniform(4), 4.0, 9);
        let shared = Arc::new(SharedOracle::new(oracle));
        let winners = std::thread::scope(|s| {
            (0..4usize)
                .map(|who| {
                    let shared = Arc::clone(&shared);
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            if let Some(g) = shared.get_token(who, BlockId::GENESIS) {
                                let block = BlockId(who as u32 + 1);
                                let set = shared.consume_token(&g, block);
                                return set.contains(&block) as usize;
                            }
                        }
                        0
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(winners, 4, "Θ_P admits everyone");
        assert_eq!(shared.consumed_for(BlockId::GENESIS).len(), 4);
    }

    #[test]
    fn first_consumed_is_the_k1_winner() {
        let shared = SharedOracle::new(ThetaOracle::frugal(1, Merits::uniform(2), 2.0, 3));
        assert_eq!(shared.first_consumed(BlockId::GENESIS), None);
        let g1 = shared.get_token(0, BlockId::GENESIS).unwrap();
        let g2 = shared.get_token(1, BlockId::GENESIS).unwrap();
        shared.consume_token(&g1, BlockId(1));
        shared.consume_token(&g2, BlockId(2));
        assert_eq!(
            shared.first_consumed(BlockId::GENESIS),
            Some(BlockId(1)),
            "k = 1: the first consume is the decision, later consumes bounce"
        );
    }

    #[test]
    fn model_and_k_pass_through() {
        let shared = SharedOracle::new(ThetaOracle::frugal(2, Merits::uniform(1), 1.0, 0));
        assert_eq!(shared.k(), KBound::Finite(2));
        assert_eq!(shared.model(), OracleModel::Frugal { k: 2 });
    }
}
