//! The refinement `R(BT-ADT, Θ)` (Defs. 3.7–3.8).
//!
//! `append(b)` is refined into oracle operations: repeatedly invoke
//! `getToken(b_h ← last_block(f(bt)), b_ℓ)` until a token is granted
//! (`τ_b ∘ τ_a*`), then `consumeToken` — whose side effect inserts the block
//! into `K[h]` *and*, when the block made it into the set, chains it under
//! `b_h` in the tree (`{b0}⌢f(bt)|⌢_h{b_ℓ}`). The evaluation function
//! reports `true` iff the block is found in the returned set.
//!
//! [`RefinedBlockTree`] implements this sequence atomically (the paper:
//! "those two operations and the concatenation occur atomically") and
//! records every operation into a [`History`] so runs can be checked
//! against the consistency criteria and purged into `Ĥ` (§3.4).
//!
//! The underlying [`BlockTree`] maintains its selected chain
//! incrementally (see `btadt_core::tipcache`), so the
//! `last_block(f(bt))` capture at every append invocation and the
//! `{b0}⌢f(bt)` materialized by every read are O(1) — workload drivers
//! can capture tips per-tick without the capture itself dominating the
//! run, which is what lets the runner scale its histories.

use crate::theta::{KBound, ThetaOracle};
use btadt_core::block::Payload;
use btadt_core::blocktree::{BlockTree, CandidateBlock};
use btadt_core::chain::Blockchain;
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::selection::SelectionFn;
use btadt_core::store::BlockStore;
use btadt_core::validity::ValidityPredicate;

/// Result of a refined `append`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The token was consumed and the block entered `K[h]` and the tree:
    /// `evaluate(..) = true`.
    Appended(BlockId),
    /// A token was granted and consumed, but `K[h]` was already full
    /// (frugal bound hit): `evaluate(..) = false`, no tree change.
    SetFull,
    /// The minted block failed the tree's validity predicate `P`; the token
    /// was spent but the block never entered the tree.
    PredicateRejected(BlockId),
    /// No token within the configured attempt budget. In the formal model
    /// the `getToken` loop runs forever; a bounded run gives up and the
    /// append counts as unsuccessful (purged from `Ĥ`).
    TokenExhausted,
}

impl AppendOutcome {
    /// The `evaluate` verdict of Def. 3.7 (`true` iff appended).
    pub fn succeeded(&self) -> bool {
        matches!(self, AppendOutcome::Appended(_))
    }
}

/// `R(BT-ADT, Θ)`: a BlockTree whose appends are gated by a token oracle.
pub struct RefinedBlockTree<F: SelectionFn, P: ValidityPredicate> {
    bt: BlockTree<F, P>,
    oracle: ThetaOracle,
    history: History,
    clock: Time,
    nonce: u64,
    /// Bound on the `getToken` retry loop (`τ_a*`).
    pub max_token_attempts: u64,
}

impl<F: SelectionFn, P: ValidityPredicate> RefinedBlockTree<F, P> {
    pub fn new(selection: F, predicate: P, oracle: ThetaOracle) -> Self {
        RefinedBlockTree {
            bt: BlockTree::new(selection, predicate),
            oracle,
            history: History::new(),
            clock: Time::ZERO,
            nonce: 0,
            max_token_attempts: 10_000,
        }
    }

    /// The refined `append` of Def. 3.7: parent is `last_block(f(bt))` at
    /// invocation, merit index defaults to `process.0`, unit work.
    pub fn append(&mut self, process: ProcessId, payload: Payload) -> AppendOutcome {
        let invoked_at = self.tick();
        let parent = self.bt.selected_tip();
        self.append_impl(process, process.0 as usize, parent, payload, 1, invoked_at)
    }

    /// The refined `append` with explicit merit index and block work.
    pub fn append_as(
        &mut self,
        process: ProcessId,
        merit_index: usize,
        payload: Payload,
        work: u64,
    ) -> AppendOutcome {
        let invoked_at = self.tick();
        let parent = self.bt.selected_tip();
        self.append_impl(process, merit_index, parent, payload, work, invoked_at)
    }

    /// The refined `append` against an *explicitly chosen* parent — the
    /// entry point for concurrent drivers where the parent was captured at
    /// invocation time (the tip the invoking process observed), which may
    /// be stale by the time the token settles. This is what makes forks
    /// reachable under Θ_P and `k > 1`.
    ///
    /// `invoked_at` lets the driver backdate the invocation event to the
    /// capture point, producing genuinely overlapping operations in the
    /// history.
    pub fn append_at(
        &mut self,
        process: ProcessId,
        merit_index: usize,
        parent: BlockId,
        payload: Payload,
        invoked_at: Time,
    ) -> AppendOutcome {
        self.append_impl(process, merit_index, parent, payload, 1, invoked_at)
    }

    fn append_impl(
        &mut self,
        process: ProcessId,
        merit_index: usize,
        parent: BlockId,
        payload: Payload,
        work: u64,
        invoked_at: Time,
    ) -> AppendOutcome {
        // τ_b ∘ τ_a*: loop getToken until granted (bounded).
        let mut grant = None;
        for _ in 0..self.max_token_attempts {
            if let Some(g) = self.oracle.get_token(merit_index, parent) {
                grant = Some(g);
                break;
            }
        }
        let grant = match grant {
            Some(g) => g,
            None => {
                let responded_at = self.tick();
                self.history.push_complete(
                    process,
                    Invocation::Append {
                        block: BlockId(u32::MAX), // never minted
                    },
                    invoked_at,
                    Response::Appended(false),
                    responded_at,
                );
                return AppendOutcome::TokenExhausted;
            }
        };

        // Oracle capacity check: `add(K, h, ·)` refuses once |K[h]| = k, in
        // which case evaluate = false and the tree must stay unchanged.
        let admits = match self.oracle.k() {
            KBound::Finite(k) => self.oracle.consumed_for(parent).len() < k as usize,
            KBound::Infinite => true,
        };
        let outcome = if admits {
            self.nonce += 1;
            let candidate = CandidateBlock {
                producer: process,
                merit_index: merit_index as u32,
                work,
                nonce: self.nonce,
                payload,
            };
            match self.bt.graft(parent, candidate) {
                None => {
                    // P rejected the minted block (last slot of the store).
                    let rejected = BlockId(self.bt.store().len() as u32 - 1);
                    let _ = self.oracle.consume_token(&grant, rejected);
                    AppendOutcome::PredicateRejected(rejected)
                }
                Some(id) => {
                    let set = self.oracle.consume_token(&grant, id);
                    debug_assert!(set.contains(&id), "admitted block must enter K[h]");
                    AppendOutcome::Appended(id)
                }
            }
        } else {
            // Token consumed against a full set: evaluate = false, no graft.
            let _ = self.oracle.consume_token(&grant, BlockId(u32::MAX));
            AppendOutcome::SetFull
        };

        let responded_at = self.tick();
        // Histories must be well-formed even if a driver's backdated
        // invocation collides with the internal clock.
        let invoked_at = invoked_at.min(Time(responded_at.0.saturating_sub(1)));
        let block = match outcome {
            AppendOutcome::Appended(id) | AppendOutcome::PredicateRejected(id) => id,
            _ => BlockId(u32::MAX),
        };
        self.history.push_complete(
            process,
            Invocation::Append { block },
            invoked_at,
            Response::Appended(outcome.succeeded()),
            responded_at,
        );
        outcome
    }

    /// `read()`: `{b0}⌢f(bt)`, recorded in the history.
    pub fn read(&mut self, process: ProcessId) -> Blockchain {
        let invoked_at = self.tick();
        self.read_at(process, invoked_at)
    }

    /// `read()` with a driver-supplied (possibly backdated) invocation time.
    pub fn read_at(&mut self, process: ProcessId, invoked_at: Time) -> Blockchain {
        let chain = self.bt.read();
        let responded_at = self.tick();
        let invoked_at = invoked_at.min(Time(responded_at.0.saturating_sub(1)));
        self.history.push_complete(
            process,
            Invocation::Read,
            invoked_at,
            Response::Chain(chain.clone()),
            responded_at,
        );
        chain
    }

    /// `read()` without recording (for drivers that record themselves).
    /// O(1) on an unchanged tip: an `Arc` clone of the cached chain.
    pub fn read_quiet(&self) -> Blockchain {
        self.bt.read()
    }

    /// Current selected tip `last_block(f(bt))` — O(1), served from the
    /// tree's incremental selection cache.
    pub fn selected_tip(&self) -> BlockId {
        self.bt.selected_tip()
    }

    fn tick(&mut self) -> Time {
        self.clock = self.clock.tick();
        self.clock
    }

    /// Advances the logical clock (drivers simulating latency).
    pub fn advance_time(&mut self, d: u64) {
        self.clock = self.clock.plus(d);
    }

    /// Current logical time.
    pub fn now(&self) -> Time {
        self.clock
    }

    pub fn store(&self) -> &BlockStore {
        self.bt.store()
    }

    pub fn oracle(&self) -> &ThetaOracle {
        &self.oracle
    }

    pub fn history(&self) -> &History {
        &self.history
    }

    pub fn blocktree(&self) -> &BlockTree<F, P> {
        &self.bt
    }
}

/// `Ĥ`: the history purged of unsuccessful append *response* events
/// (§3.4: "purged from the unsuccessful append() response events").
pub fn purge_unsuccessful(history: &History) -> History {
    let mut out = History::new();
    for op in history.ops() {
        if matches!(op.response, Some(Response::Appended(false))) {
            continue;
        }
        match (&op.response, op.responded_at) {
            (Some(resp), Some(t)) => {
                out.push_complete(
                    op.process,
                    op.invocation.clone(),
                    op.invoked_at,
                    resp.clone(),
                    t,
                );
            }
            _ => {
                out.push_invocation(op.process, op.invocation.clone(), op.invoked_at);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merit::Merits;
    use btadt_core::selection::LongestChain;
    use btadt_core::validity::{AcceptAll, DigestPrefix};

    fn refined(k: KBound, rate: f64) -> RefinedBlockTree<LongestChain, AcceptAll> {
        let merits = Merits::uniform(3);
        let oracle = match k {
            KBound::Finite(k) => ThetaOracle::frugal(k, merits, rate, 11),
            KBound::Infinite => ThetaOracle::prodigal(merits, rate, 11),
        };
        RefinedBlockTree::new(LongestChain, AcceptAll, oracle)
    }

    #[test]
    fn sequential_appends_build_a_chain() {
        let mut r = refined(KBound::Finite(1), 3.0);
        for i in 0..5 {
            let out = r.append(ProcessId(i % 3), Payload::Empty);
            assert!(out.succeeded(), "append {i}: {out:?}");
        }
        let chain = r.read(ProcessId(0));
        assert_eq!(chain.len(), 6);
        assert!(r.oracle().fork_coherent());
    }

    #[test]
    fn stale_parent_appends_fork_under_prodigal() {
        let mut r = refined(KBound::Infinite, 3.0);
        let t0 = r.now();
        // Two overlapping appends both captured b0 as parent.
        let a = r.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t0);
        let b = r.append_at(ProcessId(1), 1, BlockId::GENESIS, Payload::Empty, t0);
        assert!(a.succeeded() && b.succeeded(), "Θ_P admits both");
        // Both children of genesis: a fork.
        assert_eq!(r.store().children(BlockId::GENESIS).len(), 2);
    }

    #[test]
    fn stale_parent_appends_serialize_under_k1() {
        let mut r = refined(KBound::Finite(1), 3.0);
        let t0 = r.now();
        let a = r.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t0);
        let b = r.append_at(ProcessId(1), 1, BlockId::GENESIS, Payload::Empty, t0);
        assert!(a.succeeded());
        assert_eq!(b, AppendOutcome::SetFull, "k=1 blocks the fork");
        assert_eq!(r.store().children(BlockId::GENESIS).len(), 1);
        assert!(r.oracle().fork_coherent());
    }

    #[test]
    fn k2_admits_exactly_two_forks() {
        let mut r = refined(KBound::Finite(2), 3.0);
        let t0 = r.now();
        let outcomes: Vec<_> = (0..3)
            .map(|i| {
                r.append_at(
                    ProcessId(i),
                    i as usize,
                    BlockId::GENESIS,
                    Payload::Empty,
                    t0,
                )
            })
            .collect();
        let wins = outcomes.iter().filter(|o| o.succeeded()).count();
        assert_eq!(wins, 2);
        assert_eq!(r.store().children(BlockId::GENESIS).len(), 2);
    }

    #[test]
    fn zero_rate_exhausts_tokens() {
        let mut r = refined(KBound::Infinite, 0.0);
        r.max_token_attempts = 50;
        let out = r.append(ProcessId(0), Payload::Empty);
        assert_eq!(out, AppendOutcome::TokenExhausted);
        assert!(!out.succeeded());
        // Recorded as a failed append, purgeable.
        assert_eq!(r.history().len(), 1);
        assert_eq!(purge_unsuccessful(r.history()).len(), 0);
    }

    #[test]
    fn predicate_rejection_keeps_tree_clean() {
        let oracle = ThetaOracle::prodigal(Merits::uniform(1), 1.0, 5);
        let mut r = RefinedBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 }, oracle);
        let out = r.append(ProcessId(0), Payload::Empty);
        assert!(matches!(out, AppendOutcome::PredicateRejected(_)));
        assert_eq!(r.read(ProcessId(0)), Blockchain::genesis());
    }

    #[test]
    fn history_records_reads_and_appends() {
        let mut r = refined(KBound::Finite(1), 3.0);
        r.append(ProcessId(0), Payload::Empty);
        r.read(ProcessId(1));
        r.read(ProcessId(2));
        let h = r.history();
        assert_eq!(h.append_count(), 1);
        assert_eq!(h.reads().count(), 2);
        assert!(h.validate().is_empty());
    }

    #[test]
    fn purge_drops_only_failures() {
        let mut r = refined(KBound::Finite(1), 3.0);
        let t0 = r.now();
        r.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t0);
        r.append_at(ProcessId(1), 1, BlockId::GENESIS, Payload::Empty, t0); // fails
        r.read(ProcessId(2));
        let purged = purge_unsuccessful(r.history());
        assert_eq!(purged.append_count(), 1);
        assert_eq!(purged.reads().count(), 1);
    }

    #[test]
    fn work_parameter_reaches_store() {
        let mut r = refined(KBound::Infinite, 3.0);
        if let AppendOutcome::Appended(id) = r.append_as(ProcessId(0), 0, Payload::Empty, 9) {
            assert_eq!(r.store().get(id).work, 9);
        } else {
            panic!("append failed");
        }
    }
}
