//! CLI for the workspace discipline lint. Run from the workspace root
//! (or pass it as the first argument):
//!
//! ```text
//! cargo run --release -p btadt-lint [WORKSPACE_ROOT]
//! ```
//!
//! Prints one line per finding (`file:line: [rule] message`) and exits
//! non-zero if any rule fired — the CI `lint-discipline` job gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "btadt-lint: no `crates/` under {} — run from the workspace \
             root or pass it as the first argument",
            root.display()
        );
        return ExitCode::from(2);
    }
    let (findings, scanned) = btadt_lint::lint_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    println!(
        "btadt-lint: {scanned} files scanned, {} finding{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
