//! Token-level source-discipline lint for the BT-ADT workspace.
//!
//! Five rules, each guarding an invariant the model checker and the
//! commit pipeline's correctness argument lean on but the compiler
//! cannot see:
//!
//! 1. **`safety-comment`** — every `unsafe` block carries an adjacent
//!    `// SAFETY:` comment, and every `unsafe fn`/`impl`/`trait`
//!    declaration carries either one or a `# Safety` doc section.
//!    Scope: every `.rs` file under `crates/`.
//! 2. **`relaxed-justification`** — every `Ordering::Relaxed` carries a
//!    `// relaxed:` comment on the same line or immediately above it,
//!    stating why the weakest ordering is enough. The model explorer
//!    runs under sequential consistency, so relaxed sites are exactly
//!    the ones it cannot vouch for. Scope: `crates/core/src/`.
//! 3. **`lock-order`** — no *blocking* acquisition of the publication
//!    lock (`.publ.lock()`) while a selection-lock guard is live, and
//!    none at all inside `*_locked` functions (which run under `sel` by
//!    contract). The inline fast path's `publ.try_lock()` is the only
//!    legal publication-claim under `sel`; a blocking acquire there
//!    deadlocks against any publisher that touches `sel` (the AB-BA the
//!    `inline-claim-blocking` model suite exhibits). Scope:
//!    `crates/core/src/concurrent.rs`.
//! 4. **`wal-confinement`** — WAL append calls (`.append_batch(`,
//!    `.append_commits(`) appear in exactly one place,
//!    `publish_batches_locked`: the persist-then-ack step of stage 2.
//!    An append anywhere else bypasses group commit and the
//!    publication-order guarantee recovery replays by. Scope:
//!    `crates/core/src/concurrent.rs` (the `wal` module itself and its
//!    tests are the implementation, not call sites).
//! 5. **`vfs-confinement`** — `wal.rs` performs no raw `std::fs` IO
//!    (`std::fs`, `File::`, `OpenOptions::` tokens): every byte the
//!    durability layer moves goes through the `Vfs` seam, so the fault
//!    injector and the crash-point matrix
//!    (`crates/core/tests/wal_crashpoints.rs`) enumerate *all* of it.
//!    Scope: `crates/core/src/wal.rs` above `mod tests`.
//!
//! The scanner is deliberately token-level, not syntactic: it strips
//! comments, strings, and char literals with a small lexer and then
//! works on the stripped lines plus brace depth. That keeps it
//! dependency-free (this workspace builds offline) and fast enough to
//! run on every CI push; the trade-off is that the two scoped rules key
//! off this repository's naming conventions (`sel`/`publ` fields,
//! `_locked` suffix), which is exactly what a house lint is for.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// A source file split per line into code and comment channels: `code`
/// has comments removed and string/char-literal *contents* blanked (the
/// quotes remain, so token shapes survive); `comments` has only comment
/// text (line, block, and doc comments).
pub struct Stripped {
    pub code: Vec<String>,
    pub comments: Vec<String>,
}

/// Lexes `src` into the two channels. Handles line comments, nested
/// block comments, string literals, raw strings (any `#` depth, with
/// `b`/`c` prefixes), and the char-literal/lifetime ambiguity.
pub fn strip(src: &str) -> Stripped {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'r'
                    && matches!(b.get(i + 1), Some(&'"') | Some(&'#'))
                    && !prev_is_ident(&b, i)
                {
                    // r"..." or r#"..."# (a b/br prefix ends in an ident
                    // char, so it lands here via the `r` as well).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        code.last_mut().unwrap().push('"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.last_mut().unwrap().push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) char; a
                    // lifetime never closes.
                    if b.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                        code.last_mut().unwrap().push_str("''");
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&'\'') {
                        code.last_mut().unwrap().push_str("''");
                        i += 3;
                    } else {
                        code.last_mut().unwrap().push('\'');
                        i += 1;
                    }
                } else {
                    code.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                comments.last_mut().unwrap().push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comments.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.last_mut().unwrap().push('"');
                        st = St::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    Stripped { code, comments }
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of `word` in `line` at identifier boundaries.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap());
        let after = &line[at + word.len()..];
        let after_ok = after.is_empty() || !is_ident_char(after.chars().next().unwrap());
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Does any comment within the *justification window* of line `at`
/// (0-indexed) contain `needle`? The window is the line itself plus the
/// contiguous run of lines above that belong to the same statement:
/// pure-comment lines, attribute lines, and code continuation lines
/// (no `;`, `{`, or `}` — i.e. the statement hasn't started further up).
fn window_has(s: &Stripped, at: usize, needle: &str) -> bool {
    if s.comments[at].contains(needle) {
        return true;
    }
    let mut l = at;
    while l > 0 {
        l -= 1;
        let code = s.code[l].trim();
        let comment = &s.comments[l];
        if comment.contains(needle) {
            return true;
        }
        let continues = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || !(code.contains(';') || code.contains('{') || code.contains('}'));
        if !continues {
            return false;
        }
    }
    false
}

/// Rule 1: `unsafe` blocks need `SAFETY:`; `unsafe fn`/`impl`/`trait`
/// need `SAFETY:` or a `# Safety` doc section.
pub fn check_safety(file: &Path, s: &Stripped) -> Vec<Finding> {
    let mut out = Vec::new();
    for (ln, line) in s.code.iter().enumerate() {
        for at in word_positions(line, "unsafe") {
            // The token after `unsafe` decides the form. It may sit on
            // a following line (`unsafe {` split by rustfmt is rare but
            // legal).
            let mut rest: String = line[at + "unsafe".len()..].to_string();
            let mut l = ln;
            while rest.trim().is_empty() && l + 1 < s.code.len() {
                l += 1;
                rest = s.code[l].clone();
            }
            let rest = rest.trim_start().to_string();
            let is_decl = rest.starts_with("fn")
                || rest.starts_with("impl")
                || rest.starts_with("trait")
                || rest.starts_with("extern");
            let ok = if is_decl {
                window_has(s, ln, "SAFETY") || window_has(s, ln, "# Safety")
            } else {
                window_has(s, ln, "SAFETY")
            };
            if !ok {
                out.push(Finding {
                    file: file.to_path_buf(),
                    line: ln + 1,
                    rule: "safety-comment",
                    msg: if is_decl {
                        "`unsafe` declaration without a `# Safety` doc \
                         section or `// SAFETY:` comment"
                            .into()
                    } else {
                        "`unsafe` block without an adjacent `// SAFETY:` comment".into()
                    },
                });
            }
        }
    }
    out
}

/// Rule 2: every `Ordering::Relaxed` carries a `relaxed:` justification
/// in an adjacent comment.
pub fn check_relaxed(file: &Path, s: &Stripped) -> Vec<Finding> {
    let mut out = Vec::new();
    for (ln, line) in s.code.iter().enumerate() {
        if line.contains("Ordering::Relaxed") && !window_has(s, ln, "relaxed:") {
            out.push(Finding {
                file: file.to_path_buf(),
                line: ln + 1,
                rule: "relaxed-justification",
                msg: "`Ordering::Relaxed` without an adjacent `// relaxed:` \
                      justification"
                    .into(),
            });
        }
    }
    out
}

/// Function spans: `(name, body_open_line, body_close_line)`, 0-indexed.
fn fn_spans(code: &[String]) -> Vec<(String, usize, usize)> {
    // Flatten with line tracking, then brace-match each `fn NAME`.
    let mut spans = Vec::new();
    let mut chars: Vec<(char, usize)> = Vec::new();
    for (ln, line) in code.iter().enumerate() {
        for c in line.chars() {
            chars.push((c, ln));
        }
        chars.push(('\n', ln));
    }
    let flat: String = chars.iter().map(|(c, _)| *c).collect();
    for at in word_positions(&flat, "fn") {
        // Name = next identifier.
        let name: String = flat[at + 2..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| is_ident_char(*c))
            .collect();
        if name.is_empty() {
            continue;
        }
        // Body = first `{` after the signature; a `;` first means a
        // bodyless trait-method signature.
        let mut open = None;
        for (j, c) in flat[at..].char_indices() {
            match c {
                '{' => {
                    open = Some(at + j);
                    break;
                }
                ';' => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let mut d = 0i32;
        let mut close = None;
        for (j, c) in flat[open..].char_indices() {
            match c {
                '{' => d += 1,
                '}' => {
                    d -= 1;
                    if d == 0 {
                        close = Some(open + j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        spans.push((name, chars[open].1, chars[close].1));
    }
    spans
}

/// Innermost function containing `line`, if any.
fn enclosing_fn(spans: &[(String, usize, usize)], line: usize) -> Option<&str> {
    spans
        .iter()
        .filter(|(_, a, b)| (*a..=*b).contains(&line))
        .min_by_key(|(_, a, b)| b - a)
        .map(|(n, _, _)| n.as_str())
}

/// Rule 3: lock ordering between the selection and publication locks.
pub fn check_lock_order(file: &Path, s: &Stripped) -> Vec<Finding> {
    let mut out = Vec::new();
    let spans = fn_spans(&s.code);

    // (a) `*_locked` functions run under `sel` by contract: no blocking
    // publication acquire anywhere inside them.
    for (ln, line) in s.code.iter().enumerate() {
        if !line.contains(".publ.lock(") {
            continue;
        }
        if let Some(name) = enclosing_fn(&spans, ln) {
            if name.ends_with("_locked") {
                out.push(Finding {
                    file: file.to_path_buf(),
                    line: ln + 1,
                    rule: "lock-order",
                    msg: format!(
                        "blocking `.publ.lock()` inside `{name}` — `*_locked` \
                         functions run under the selection lock; use \
                         `try_lock` (the inline claim) or move the acquire \
                         out of the `sel` region"
                    ),
                });
            }
        }
    }

    // (b) Region tracking: a `let <g> = ....sel.lock()` binding opens a
    // selection region that ends at `drop(<g>)` or when the binding's
    // brace scope closes. Any `.publ.lock(` inside is a violation.
    struct Region {
        guard: String,
        depth: i32,
        line: usize,
    }
    let mut regions: Vec<Region> = Vec::new();
    let mut depth = 0i32;
    for (ln, line) in s.code.iter().enumerate() {
        // Close regions whose guard is dropped on this line.
        regions.retain(|r| {
            !word_positions(line, "drop")
                .iter()
                .any(|&p| line[p..].starts_with(&format!("drop({})", r.guard)))
        });
        if line.contains(".publ.lock(") {
            for r in &regions {
                out.push(Finding {
                    file: file.to_path_buf(),
                    line: ln + 1,
                    rule: "lock-order",
                    msg: format!(
                        "blocking `.publ.lock()` while selection guard \
                         `{}` (line {}) is live — only `publ.try_lock()` \
                         may run under `sel`",
                        r.guard,
                        r.line + 1
                    ),
                });
            }
        }
        // New region?
        if line.contains(".sel.lock()") {
            if let Some(let_pos) = word_positions(line, "let").first().copied() {
                let after = &line[let_pos + 3..];
                let guard: String = after
                    .split_whitespace()
                    .map(|w| w.trim_end_matches(['=', ':']))
                    .find(|w| *w != "mut" && !w.is_empty())
                    .unwrap_or("")
                    .to_string();
                if !guard.is_empty() && guard.chars().all(is_ident_char) {
                    regions.push(Region {
                        guard,
                        depth,
                        line: ln,
                    });
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    regions.retain(|r| r.depth <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

/// Rule 4: WAL appends only inside `publish_batches_locked`.
pub fn check_wal_confinement(file: &Path, s: &Stripped) -> Vec<Finding> {
    let mut out = Vec::new();
    let spans = fn_spans(&s.code);
    for (ln, line) in s.code.iter().enumerate() {
        if !(line.contains(".append_batch(") || line.contains(".append_commits(")) {
            continue;
        }
        let encl = enclosing_fn(&spans, ln);
        if encl != Some("publish_batches_locked") {
            out.push(Finding {
                file: file.to_path_buf(),
                line: ln + 1,
                rule: "wal-confinement",
                msg: format!(
                    "WAL append outside `publish_batches_locked` (in `{}`) — \
                     all persistence goes through the stage-2 group commit",
                    encl.unwrap_or("<module scope>")
                ),
            });
        }
    }
    out
}

/// Rule 5: `wal.rs` performs no raw `std::fs` IO — every byte the
/// durability layer moves goes through the `Vfs` seam
/// (`crates/core/src/vfs.rs`), so the fault injector and the
/// crash-point matrix see *all* of it. A direct `std::fs` call is an IO
/// site power loss can hit but the matrix cannot enumerate. Scoped to
/// code above `mod tests` (tests may touch real files).
pub fn check_vfs_confinement(file: &Path, s: &Stripped) -> Vec<Finding> {
    const RAW_IO: [&str; 3] = ["std::fs", "File::", "OpenOptions::"];
    let mut out = Vec::new();
    let boundary = s
        .code
        .iter()
        .position(|l| l.trim_start().starts_with("mod tests"))
        .unwrap_or(s.code.len());
    for (ln, line) in s.code[..boundary].iter().enumerate() {
        let hit = RAW_IO.iter().any(|tok| {
            line.match_indices(tok).any(|(i, _)| {
                // Token boundary: `VfsFile::` must not match `File::`.
                i == 0 || !is_ident_char(line.as_bytes()[i - 1] as char)
            })
        });
        if hit {
            out.push(Finding {
                file: file.to_path_buf(),
                line: ln + 1,
                rule: "vfs-confinement",
                msg: "raw std::fs IO in wal.rs — route it through the Vfs seam \
                      so fault injection and the crash-point matrix cover it"
                    .to_string(),
            });
        }
    }
    out
}

/// Applies every rule at its scope to one file (path decides scope).
pub fn lint_file(path: &Path, src: &str) -> Vec<Finding> {
    let s = strip(src);
    let mut out = check_safety(path, &s);
    let p = path.to_string_lossy().replace('\\', "/");
    if p.contains("crates/core/src/") {
        out.extend(check_relaxed(path, &s));
    }
    if p.ends_with("crates/core/src/concurrent.rs") {
        out.extend(check_lock_order(path, &s));
        out.extend(check_wal_confinement(path, &s));
    }
    if p.ends_with("crates/core/src/wal.rs") {
        out.extend(check_vfs_confinement(path, &s));
    }
    out
}

/// Walks `root/crates/**` and lints every `.rs` file. Returns findings
/// plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    let scanned = files.len();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => {
                // Report paths relative to the workspace root.
                let rel = f.strip_prefix(root).unwrap_or(f);
                findings.extend(lint_file(rel, &src));
            }
            Err(e) => findings.push(Finding {
                file: f.clone(),
                line: 0,
                rule: "io",
                msg: format!("unreadable: {e}"),
            }),
        }
    }
    (findings, scanned)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if p.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(f: impl Fn(&Path, &Stripped) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        f(Path::new("t.rs"), &strip(src))
    }

    #[test]
    fn lexer_strips_comments_strings_and_chars() {
        let s = strip(
            "let x = \"unsafe { Ordering::Relaxed }\"; // unsafe in comment\n\
             let c = '\"'; let l: &'static str = r#\"publ.lock()\"#;\n\
             /* block\n   unsafe */ let y = 1;\n",
        );
        assert!(!s.code[0].contains("unsafe"));
        assert!(s.comments[0].contains("unsafe in comment"));
        assert!(!s.code[1].contains("publ.lock"));
        assert!(s.comments[3].contains("unsafe"));
        assert!(s.code[3].contains("let y = 1;"));
    }

    #[test]
    fn safety_rule_accepts_adjacent_comment_and_doc_section() {
        let ok = "\
            // SAFETY: the slab outlives every reader.\n\
            let v = unsafe { &*ptr };\n\
            /// # Safety\n\
            /// Caller pins the epoch first.\n\
            pub unsafe fn read_pinned() {}\n";
        assert!(lint_str(check_safety, ok).is_empty());
    }

    #[test]
    fn safety_rule_flags_bare_unsafe() {
        let bad = "fn f() {\n    let v = unsafe { &*p };\n}\n";
        let f = lint_str(check_safety, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_does_not_leak_across_statements() {
        let bad = "\
            // SAFETY: covers only the first block.\n\
            let a = unsafe { one() };\n\
            let b = unsafe { two() };\n";
        let f = lint_str(check_safety, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn relaxed_rule_wants_a_justification() {
        let ok = "\
            // relaxed: monotone counter, read only for stats.\n\
            n.fetch_add(1, Ordering::Relaxed);\n\
            m.load(Ordering::Relaxed); // relaxed: same-thread reread\n";
        assert!(lint_str(check_relaxed, ok).is_empty());
        let bad = "n.fetch_add(1, Ordering::Relaxed);\n";
        let f = lint_str(check_relaxed, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "relaxed-justification");
    }

    #[test]
    fn lock_order_flags_blocking_publ_under_sel() {
        let bad = "\
            fn stage(&self) {\n\
                let mut sel = self.sel.lock();\n\
                let publ = self.publ.lock();\n\
            }\n";
        let f = lint_str(check_lock_order, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-order");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lock_order_allows_try_lock_and_post_drop_acquire() {
        let ok = "\
            fn stage(&self) {\n\
                let mut sel = self.sel.lock();\n\
                let claim = self.publ.try_lock();\n\
                drop(sel);\n\
                let publ = self.publ.lock();\n\
            }\n\
            fn scoped(&self) {\n\
                {\n\
                    let sel = self.sel.lock();\n\
                }\n\
                let publ = self.publ.lock();\n\
            }\n";
        assert!(lint_str(check_lock_order, ok).is_empty());
    }

    #[test]
    fn lock_order_flags_publ_in_locked_suffix_fn() {
        let bad = "\
            fn stage_inline_locked(&self) {\n\
                let publ = self.publ.lock();\n\
            }\n";
        let f = lint_str(check_lock_order, bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("stage_inline_locked"));
    }

    #[test]
    fn wal_appends_confined_to_publish_batches_locked() {
        let ok = "\
            fn publish_batches_locked(&self) {\n\
                wal.append_batch(&ids);\n\
            }\n";
        assert!(lint_str(check_wal_confinement, ok).is_empty());
        let bad = "\
            fn sneak_append(&self) {\n\
                wal.append_batch(&ids);\n\
            }\n";
        let f = lint_str(check_wal_confinement, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wal-confinement");
        assert!(f[0].msg.contains("sneak_append"));
    }

    // ----------------------------------------------------------------
    // Mutation smoke tests against the real sources: prove the lint
    // bites on exactly the refactors it exists to stop.
    // ----------------------------------------------------------------

    fn core_src(name: &str) -> (PathBuf, String) {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../core/src")
            .join(name);
        let src =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
        (PathBuf::from("crates/core/src").join(name), src)
    }

    #[test]
    fn real_sources_are_clean() {
        for name in [
            "concurrent.rs",
            "epoch.rs",
            "commit.rs",
            "chain.rs",
            "wal.rs",
            "vfs.rs",
        ] {
            let (path, src) = core_src(name);
            let findings = lint_file(&path, &src);
            assert!(
                findings.is_empty(),
                "{name}:\n{}",
                findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn mutation_raw_fs_io_in_wal_is_flagged() {
        // Sneak a raw unlink into wal.rs above the test module, as a
        // shortcut refactor might: the VFS seam no longer sees that IO,
        // the crash-point matrix cannot enumerate it, so the lint must
        // fire.
        let (path, src) = core_src("wal.rs");
        let needle = "impl Wal {";
        assert!(
            src.contains(needle),
            "wal.rs lost `impl Wal`; update the lint mutation test"
        );
        let sneaky = "fn sneaky(p: &std::path::Path) {\n    \
                      let _ = std::fs::remove_file(p);\n}\n\nimpl Wal {";
        let mutated = src.replacen(needle, sneaky, 1);
        let before = lint_file(&path, &src).len();
        let after = lint_file(&path, &mutated);
        assert!(
            after.len() > before,
            "raw std::fs IO in wal.rs not flagged: {after:?}"
        );
        assert!(after.iter().any(|f| f.rule == "vfs-confinement"));
        // The same token *below* `mod tests` stays legal: tests touch
        // real files by design.
        let test_mutated = src.replacen(
            "mod tests {",
            "mod tests {\n    fn sneaky(p: &std::path::Path) {\n        \
             let _ = std::fs::remove_file(p);\n    }",
            1,
        );
        assert_eq!(
            lint_file(&path, &test_mutated).len(),
            before,
            "test-module fs IO wrongly flagged"
        );
    }

    #[test]
    fn mutation_weakened_slot_cas_is_flagged() {
        // Weaken the pin's slot-epoch re-publication store from SeqCst
        // to Relaxed, as a misguided optimization would: the new
        // Relaxed has no `// relaxed:` justification, so the lint must
        // fire. (The claim CAS next to it already carries a justified
        // Relaxed *failure* ordering on the same line, which a
        // line-granular lint cannot re-litigate — the store is the
        // adjacent SeqCst link in the same slot protocol.)
        let (path, src) = core_src("epoch.rs");
        let needle = "slot.store((g << 1) | 1, Ordering::SeqCst);";
        assert!(
            src.contains(needle),
            "slot re-publication store moved; update the lint mutation test"
        );
        let mutated = src.replace(needle, "slot.store((g << 1) | 1, Ordering::Relaxed);");
        let before = lint_file(&path, &src).len();
        let after = lint_file(&path, &mutated);
        assert!(
            after.len() > before,
            "weakened slot CAS not flagged: {after:?}"
        );
        assert!(after.iter().any(|f| f.rule == "relaxed-justification"));
    }

    #[test]
    fn mutation_blocking_inline_claim_is_flagged() {
        // Turn the inline claim's `try_lock` into a blocking `lock()` —
        // the sel→publ deadlock the model suite exhibits dynamically.
        let (path, src) = core_src("concurrent.rs");
        let needle = "self.publ.try_lock()";
        assert!(
            src.contains(needle),
            "inline claim moved; update the lint mutation test"
        );
        let mutated = src.replacen(needle, "Some(self.publ.lock())", 1);
        let before = lint_file(&path, &src).len();
        let after = lint_file(&path, &mutated);
        assert!(
            after.len() > before,
            "blocking inline claim not flagged: {after:?}"
        );
        assert!(after.iter().any(|f| f.rule == "lock-order"));
    }

    #[test]
    fn mutation_stray_wal_append_is_flagged() {
        // Append to the WAL from outside stage 2.
        let (path, src) = core_src("concurrent.rs");
        let needle = "fn commit_generation(&self)";
        assert!(
            src.contains(needle),
            "anchor moved; update the lint mutation test"
        );
        let mutated = src.replace(
            needle,
            "fn sneak(&self, w: &mut crate::wal::Wal) {\n        let _ = w.append_batch(&[], 0);\n    }\n    fn commit_generation(&self)",
        );
        let after = lint_file(&path, &mutated);
        assert!(
            after.iter().any(|f| f.rule == "wal-confinement"),
            "{after:?}"
        );
    }

    #[test]
    fn mutation_uncommented_unsafe_is_flagged() {
        let (path, src) = core_src("epoch.rs");
        let mutated =
            format!("{src}\nfn sneak_deref(p: *const u32) -> u32 {{\n    unsafe {{ *p }}\n}}\n");
        let after = lint_file(&path, &mutated);
        assert!(
            after.iter().any(|f| f.rule == "safety-comment"),
            "{after:?}"
        );
    }
}
