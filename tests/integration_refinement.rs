//! Integration: the refined append R(BT-ADT, Θ) end to end — sequential
//! specification conformance, oracle gating, and the interplay between
//! selection functions and refinements.

use blockchain_adt::core::adt::{check_sequential_history, Operation};
use blockchain_adt::core::blocktree::{BlockTreeAdt, BtInput, BtOutput};
use blockchain_adt::prelude::*;

#[test]
fn refined_append_respects_selection_function() {
    // Heaviest-work selection: a heavy side branch attracts the refined
    // append even when a longer light branch exists.
    let oracle = ThetaOracle::prodigal(Merits::uniform(2), 2.0, 3);
    let mut tree = RefinedBlockTree::new(HeaviestWork, AcceptAll, oracle);
    let t0 = tree.now();
    // Light chain of length 2 via overlapping appends at b0, then extend.
    let a = match tree.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t0) {
        AppendOutcome::Appended(id) => id,
        other => panic!("{other:?}"),
    };
    let _a2 = tree.append_at(ProcessId(0), 0, a, Payload::Empty, t0);
    // Heavy single block forking at genesis.
    let heavy_parent = BlockId::GENESIS;
    let heavy = {
        let t1 = tree.now();
        // Mint with work 10 via append_as is tip-directed; use append_at
        // then check: append_at mints work 1, so instead verify with
        // HeaviestWork after manually minting heavy work through append_as
        // once the selected tip is genesis-side. Simplest: grow the heavy
        // branch by three unit blocks (weight 3 > 2).
        let h1 = match tree.append_at(ProcessId(1), 1, heavy_parent, Payload::Empty, t1) {
            AppendOutcome::Appended(id) => id,
            other => panic!("{other:?}"),
        };
        let h2 = match tree.append_at(ProcessId(1), 1, h1, Payload::Empty, t1) {
            AppendOutcome::Appended(id) => id,
            other => panic!("{other:?}"),
        };
        match tree.append_at(ProcessId(1), 1, h2, Payload::Empty, t1) {
            AppendOutcome::Appended(id) => id,
            other => panic!("{other:?}"),
        }
    };
    // The next tip-directed append must chain on the heaviest branch.
    let out = tree.append(ProcessId(0), Payload::Empty);
    match out {
        AppendOutcome::Appended(id) => {
            assert_eq!(tree.store().parent(id), Some(heavy));
        }
        other => panic!("append failed: {other:?}"),
    }
}

#[test]
fn figure_7_refined_append_path() {
    // The Fig. 7 scripted path: getToken on b0, consume, block chained,
    // reads reflect it — expressed through the public API.
    let oracle = ThetaOracle::frugal(1, Merits::uniform(1), 1.0, 9);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    assert_eq!(tree.read(ProcessId(0)), Blockchain::genesis());
    let out = tree.append(ProcessId(0), Payload::Empty);
    let b = match out {
        AppendOutcome::Appended(id) => id,
        other => panic!("{other:?}"),
    };
    assert_eq!(tree.oracle().consumed_for(BlockId::GENESIS), &[b]);
    let chain = tree.read(ProcessId(0));
    assert_eq!(chain.ids(), &[BlockId::GENESIS, b]);
    // K[b0] is full: a backdated append at b0 must fail (evaluate=false).
    let t = tree.now();
    let second = tree.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t);
    assert_eq!(second, AppendOutcome::SetFull);
}

#[test]
fn sequential_spec_replay_matches_refined_execution() {
    // Execute a refined run, extract its successful appends, and check the
    // corresponding word is in L(BT-ADT) — the refined object implements
    // the sequential specification when no overlap occurs.
    let oracle = ThetaOracle::frugal(1, Merits::uniform(2), 2.0, 5);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    let mut word = Vec::new();
    for i in 0..4u32 {
        let out = tree.append(ProcessId(i % 2), Payload::Empty);
        assert!(out.succeeded());
        word.push(Operation::with_output(
            BtInput::Append(CandidateBlock::simple(ProcessId(i % 2), u64::from(i) + 1)),
            BtOutput::Appended(true),
        ));
    }
    let adt = BlockTreeAdt::new(LongestChain, AcceptAll);
    let states = check_sequential_history(&adt, &word).expect("word in L(T)");
    assert_eq!(states.last().unwrap().tree().len(), 5);
    // And the refined tree's read agrees with the spec's final chain len.
    assert_eq!(tree.read(ProcessId(0)).len(), 5);
}

#[test]
fn token_accounting_is_conserved() {
    let oracle = ThetaOracle::frugal(2, Merits::uniform(3), 1.5, 8);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    let mut successes = 0u64;
    for i in 0..30u32 {
        if tree
            .append(ProcessId(i % 3), Payload::Opaque(u64::from(i)))
            .succeeded()
        {
            successes += 1;
        }
    }
    let oracle = tree.oracle();
    assert!(oracle.tokens_granted() >= successes);
    assert!(oracle.tokens_consumed() as u64 >= successes);
    assert!(oracle.fork_coherent());
}

#[test]
fn shared_oracle_protocol_a_agrees_with_tree_state() {
    // Protocol A's decision is exactly the block in K[b0] of the oracle.
    let oracle = ThetaOracle::frugal(1, Merits::uniform(4), 3.0, 21);
    let shared = SharedOracle::new(oracle);
    let consensus = OracleConsensus::new(shared);
    let report = run_trial(&consensus, 4);
    assert!(report.agreement());
    let winner = report.decided().unwrap();
    let set = consensus.oracle().consumed_for(BlockId::GENESIS);
    assert_eq!(set, vec![BlockId(winner as u32)]);
}
