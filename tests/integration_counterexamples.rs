//! Integration: the §4 impossibility/necessity results as end-to-end
//! executions, including robustness across seeds and the implication
//! chains between LRC, Update Agreement, and the consistency criteria.

use blockchain_adt::prelude::*;

#[test]
fn theorem_4_8_frontier_across_seeds() {
    for seed in [11u64, 42, 99] {
        // Fork-permitting oracles break Strong Prefix on the crafted
        // schedule…
        for k in [KBound::Infinite, KBound::Finite(2), KBound::Finite(4)] {
            let out = theorem_4_8(k, seed);
            let (sc, ec) = out.consistency();
            assert!(!sc.holds(), "seed {seed} {k:?}: SC must fail");
            assert!(
                !sc.strong_prefix.as_ref().unwrap().holds,
                "the failure must be Strong Prefix"
            );
            assert!(ec.holds(), "seed {seed} {k:?}: the system still converges");
        }
        // …and Θ_F,k=1 survives it.
        let out = theorem_4_8(KBound::Finite(1), seed);
        let (sc, ec) = out.consistency();
        assert!(sc.holds(), "seed {seed}: k=1 preserves SC\n{sc}");
        assert!(ec.holds());
    }
}

#[test]
fn necessity_chain_is_monotone() {
    // LRC ⊇ UA ⊇ EC as necessary conditions: violating an outer layer
    // violates everything inward; satisfying all layers yields EC.
    for seed in [7u64, 21] {
        // Positive: all three hold.
        let good = update_agreement_positive(seed);
        assert!(check_lrc(&good.trace, &good.correct).holds());
        assert!(check_update_agreement(&good.trace, &good.store, &good.correct).holds());
        let (_, ec) = good.consistency();
        assert!(ec.holds(), "seed {seed}");

        // R1 violation: UA and EC fail.
        let bad = lemma_4_4(seed);
        let ua = check_update_agreement(&bad.trace, &bad.store, &bad.correct);
        assert!(!ua.r1 && !ua.holds());
        let (_, ec) = bad.consistency();
        assert!(!ec.holds());

        // R3 violation through a dropped channel: LRC, UA, EC all fail.
        let bad = lemma_4_5(seed);
        assert!(!check_lrc(&bad.trace, &bad.correct).holds());
        let ua = check_update_agreement(&bad.trace, &bad.store, &bad.correct);
        assert!(!ua.r3 && !ua.holds());
        let (_, ec) = bad.consistency();
        assert!(!ec.holds());
    }
}

#[test]
fn partitioned_network_heals_into_eventual_consistency() {
    use blockchain_adt::core::criteria::{
        check_eventual_consistency, ConsistencyParams, LivenessMode,
    };
    use blockchain_adt::core::prelude::*;
    use blockchain_adt::sim::{NetworkModel, Partition, SimpleMiner, World};

    // Two-sided partition for 30 ticks, then healing: divergent growth
    // followed by convergence — EC with the cut after the heal.
    let seed = 5u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(4), 0.5, seed);
    let net =
        NetworkModel::synchronous(2, seed).with_partition(Partition::halves(4, 2, Some(Time(30))));
    let miners = vec![
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    w.run_ticks(45); // partition + heal + settle
    let cut = w.now();
    w.run_ticks(25); // growth past the cut
    w.read_all();
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    let ec = check_eventual_consistency(&w.trace.history, &params);
    assert!(ec.holds(), "healed partition must converge\n{ec}");
}

#[test]
fn permanent_partition_destroys_eventual_consistency() {
    use blockchain_adt::core::criteria::{
        check_eventual_consistency, ConsistencyParams, LivenessMode,
    };
    use blockchain_adt::core::prelude::*;
    use blockchain_adt::sim::{NetworkModel, Partition, SimpleMiner, World};

    let seed = 6u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(4), 0.5, seed);
    let net = NetworkModel::synchronous(2, seed).with_partition(Partition::halves(4, 2, None));
    let miners = vec![
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    w.run_ticks(40);
    let cut = w.now();
    w.run_ticks(20);
    w.read_all();
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    let ec = check_eventual_consistency(&w.trace.history, &params);
    assert!(!ec.holds(), "permanent partition cannot converge");
    // And the trace-level diagnosis agrees: LRC agreement is violated.
    assert!(!check_lrc(&w.trace, &w.correct_mask()).agreement);
}

#[test]
fn crash_faults_do_not_break_eventual_consistency() {
    use blockchain_adt::core::criteria::{
        check_eventual_consistency, ConsistencyParams, LivenessMode,
    };
    use blockchain_adt::core::prelude::*;
    use blockchain_adt::sim::{NetworkModel, SimpleMiner, World};

    // A crashed process is simply absent from the correct-restricted
    // history; the survivors still satisfy EC (crash-stop f < n).
    let seed = 8u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(4), 0.5, seed);
    let net = NetworkModel::synchronous(2, seed);
    let miners = vec![
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    w.run_ticks(15);
    w.crash(ProcessId(3));
    w.run_ticks(30);
    w.run_ticks(5);
    let cut = w.now();
    w.run_ticks(25);
    w.read_all();
    let restricted = w.trace.restrict_correct(&w.correct_mask());
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    let ec = check_eventual_consistency(&restricted.history, &params);
    assert!(ec.holds(), "{ec}");
}

#[test]
fn weak_synchrony_stabilizes_into_eventual_consistency() {
    use blockchain_adt::core::criteria::{
        check_eventual_consistency, ConsistencyParams, LivenessMode,
    };
    use blockchain_adt::core::prelude::*;
    use blockchain_adt::sim::{NetworkModel, SimpleMiner, Synchrony, World};

    // Weakly synchronous channels (§4.2): wild delays up to 25 ticks until
    // τ = 40, then δ = 2. Divergence during the wild phase, convergence
    // after stabilization — EC with the cut past τ.
    let seed = 12u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(4), 0.5, seed);
    let net = NetworkModel::new(
        Synchrony::WeaklySynchronous {
            tau: 40,
            delta: 2,
            wild: 25,
        },
        seed,
    );
    let miners = vec![
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
        SimpleMiner::gossiping(),
    ];
    let mut w: World<SimpleMiner> = World::new(miners, oracle, net, Box::new(LongestChain), seed);
    w.read_every = Some(5);
    // Wild phase + stabilization + drain of wild-phase stragglers.
    w.run_ticks(40 + 30);
    let cut = w.now();
    w.run_ticks(30);
    w.read_all();
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    let ec = check_eventual_consistency(&w.trace.history, &params);
    assert!(ec.holds(), "weak synchrony must stabilize\n{ec}");
}

#[test]
fn byzantine_equivocation_tolerated_by_correct_majority() {
    use blockchain_adt::core::criteria::{
        check_eventual_consistency, ConsistencyParams, LivenessMode,
    };
    use blockchain_adt::core::prelude::*;
    use blockchain_adt::sim::{Equivocator, NetworkModel, World};

    // A pure-attacker world: even a network of equivocators cannot break
    // Block Validity or Local Monotonic Read for the (empty) correct set;
    // more interestingly, one attacker among honest processes is covered
    // by the sim crate's unit tests. Here: attacker alone produces splits,
    // and the Def. 4.2 restriction leaves a vacuously-consistent history.
    let seed = 4u64;
    let oracle = ThetaOracle::prodigal(Merits::uniform(2), 1.5, seed);
    let nodes = vec![Equivocator::new(), Equivocator::new()];
    let mut w: World<Equivocator> = World::new(
        nodes,
        oracle,
        NetworkModel::synchronous(2, seed),
        Box::new(LongestChain),
        seed,
    );
    w.mark_byzantine(ProcessId(0));
    w.mark_byzantine(ProcessId(1));
    w.run_ticks(30);
    let restricted = w.trace.restrict_correct(&w.correct_mask());
    assert_eq!(restricted.history.reads().count(), 0, "no correct reads");
    let params = ConsistencyParams {
        store: &w.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::Vacuous,
    };
    let ec = check_eventual_consistency(&restricted.history, &params);
    assert!(ec.holds(), "vacuous over an empty correct set");
    // But the attackers really did fork the tree.
    assert!(w.store.ids().any(|b| w.store.children(b).len() >= 2));
}
