//! Integration: Table 1 end to end — all seven system models classified
//! against the paper's mapping, plus cross-system sanity properties.

use blockchain_adt::core::criteria::{ConsistencyClass, CriterionKind};
use blockchain_adt::protocols::{
    algorand, bitcoin, byzcoin, ethereum, hyperledger, peercensus, redbelly,
};
use blockchain_adt::protocols::{table1, RunSchedule};

#[test]
fn table_1_full_reproduction() {
    for seed in [0xB10C_u64, 0x7AB1] {
        let rows = table1(seed);
        assert_eq!(rows.len(), 7, "all seven systems classified");
        for row in &rows {
            assert!(
                row.matches_paper(),
                "seed {seed:#x}: {} observed {} vs expected {}",
                row.system,
                row.observed_class,
                row.expected
            );
        }
    }
}

#[test]
fn sc_systems_never_fork_across_seeds() {
    for seed in [1u64, 2, 3] {
        let runs = [
            (
                "byzcoin",
                byzcoin::run(&byzcoin::ByzCoinConfig {
                    seed,
                    ..Default::default()
                }),
            ),
            (
                "algorand",
                algorand::run(&algorand::AlgorandConfig {
                    seed,
                    ..Default::default()
                }),
            ),
            (
                "peercensus",
                peercensus::run(&peercensus::PeerCensusConfig {
                    seed,
                    ..Default::default()
                }),
            ),
            (
                "redbelly",
                redbelly::run(&redbelly::RedBellyConfig {
                    seed,
                    ..Default::default()
                }),
            ),
            (
                "fabric",
                hyperledger::run(&hyperledger::FabricConfig {
                    seed,
                    ..Default::default()
                }),
            ),
        ];
        for (name, run) in runs {
            assert_eq!(run.max_fork_degree, 1, "{name} seed {seed}");
            assert_eq!(
                run.consistency_class(),
                ConsistencyClass::Strong,
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn ec_systems_stay_eventual_under_longer_delays() {
    // Stretch δ: more forks, but EC must survive on a synchronous network.
    let run = bitcoin::run(&bitcoin::BitcoinConfig {
        delta: 6,
        rate: 1.0,
        seed: 77,
        schedule: RunSchedule {
            settle_ticks: 14,
            post_cut_grace: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(run.max_fork_degree >= 2, "long δ must fork");
    assert!(run.consistency_class() >= ConsistencyClass::Eventual);

    let run = ethereum::run(&ethereum::EthereumConfig {
        delta: 6,
        rate: 1.2,
        seed: 77,
        schedule: RunSchedule {
            settle_ticks: 14,
            post_cut_grace: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(run.consistency_class() >= ConsistencyClass::Eventual);
}

#[test]
fn every_system_makes_progress_and_converges() {
    let rows = table1(0xFEED);
    for row in &rows {
        assert!(row.blocks > 0, "{}: zero blocks", row.system);
        assert!(
            row.converged,
            "{}: replicas diverged at the end",
            row.system
        );
    }
}

#[test]
fn expected_oracle_models_match_paper_table() {
    use blockchain_adt::core::hierarchy::OracleModel;
    let rows = table1(0xB10C);
    let by_name: std::collections::HashMap<&str, &blockchain_adt::protocols::Classification> =
        rows.iter().map(|r| (r.system, r)).collect();
    assert_eq!(by_name["Bitcoin"].expected.oracle, OracleModel::Prodigal);
    assert_eq!(by_name["Ethereum"].expected.oracle, OracleModel::Prodigal);
    for sc in [
        "Algorand",
        "ByzCoin",
        "PeerCensus",
        "Redbelly",
        "Hyperledger",
    ] {
        assert_eq!(by_name[sc].expected.oracle, OracleModel::Frugal { k: 1 });
        assert_eq!(by_name[sc].expected.criterion, CriterionKind::Strong);
    }
}

#[test]
fn peercensus_security_curve_shape() {
    use blockchain_adt::protocols::peercensus::secure_state_probability;
    // The A4 curve: monotone decreasing in adversarial power.
    let points: Vec<f64> = [0.05, 0.15, 0.25, 0.33]
        .iter()
        .map(|&a| secure_state_probability(a, 30, 10, 300, 99))
        .collect();
    for w in points.windows(2) {
        assert!(
            w[0] >= w[1],
            "security must not increase with α_A: {points:?}"
        );
    }
    assert!(points[0] > 0.95);
    assert!(points[3] < 0.35);
}
