//! Integration: the §4.1 shared-memory results on real threads — the
//! CT ⇒ CAS ⇒ Consensus chain, the snapshot-based prodigal oracle, and
//! the synchronization-power gap between Θ_F,k=1 and Θ_P.

use blockchain_adt::prelude::*;
use blockchain_adt::registers::adversary::{divergent_schedule, naive_propose, PickRule};
use blockchain_adt::registers::consensus::Consensus;
use std::sync::Arc;

#[test]
fn the_full_reduction_chain_thm_4_1_and_4_2() {
    // consumeToken (k=1) ⇒ CAS (Fig. 10) ⇒ consensus: build consensus on
    // top of the *reduced* CAS and validate Def. 4.1 on threads.
    struct ReducedCasConsensus {
        cell: CasFromCt,
    }
    impl Consensus for ReducedCasConsensus {
        fn propose(&self, _who: usize, value: u64) -> u64 {
            let prev = self.cell.compare_and_swap_from_empty(value);
            if prev == EMPTY {
                value
            } else {
                prev
            }
        }
    }
    for _ in 0..10 {
        let c = ReducedCasConsensus {
            cell: CasFromCt::new(),
        };
        let report = run_trial(&c, 8);
        assert!(report.termination() && report.agreement() && report.validity());
    }
}

#[test]
fn protocol_a_scales_with_threads() {
    for &n in &[2usize, 4, 8, 16] {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.8, n as u64 + 1);
        let consensus = OracleConsensus::new(SharedOracle::new(oracle));
        let report = run_trial(&consensus, n);
        assert!(report.agreement(), "n={n}: {:?}", report.decisions);
        assert!(report.validity());
        assert!(consensus.oracle().fork_coherent());
    }
}

#[test]
fn skewed_merits_still_agree() {
    // One process holds 90% of the merit: it usually wins, but agreement
    // and validity hold regardless of who does.
    let mut weights = vec![1.0; 8];
    weights[0] = 63.0;
    for seed in 0..5u64 {
        let oracle = ThetaOracle::frugal(1, Merits::from_weights(weights.clone()), 6.0, seed);
        let consensus = OracleConsensus::new(SharedOracle::new(oracle));
        let report = run_trial(&consensus, 8);
        assert!(report.agreement() && report.validity(), "seed {seed}");
    }
}

#[test]
fn snapshot_based_prodigal_ct_admits_everyone_but_decides_nothing() {
    let n = 6;
    let cell = Arc::new(ProdigalCtCell::new(n));
    let views: Vec<Vec<u64>> = std::thread::scope(|s| {
        (0..n)
            .map(|m| {
                let cell = Arc::clone(&cell);
                s.spawn(move || cell.consume_token(m, (m as u64 + 1) * 11))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    // Everyone consumed successfully — no arbitration happened.
    for (m, v) in views.iter().enumerate() {
        assert!(v.contains(&((m as u64 + 1) * 11)));
    }
    assert_eq!(cell.get().len(), n);
}

#[test]
fn prodigal_divergence_vs_frugal_agreement() {
    // Thm. 4.2 vs Thm. 4.3 in one test: the same two-proposer schedule
    // diverges on Θ_P and agrees on Θ_F,k=1.
    let (a, b) = divergent_schedule(PickRule::MinSlot);
    assert_ne!(a, b, "Θ_P naive consensus diverges");

    let k1 = ConsumeTokenCell::new();
    let d_b = k1.consume_token(1);
    let d_a = k1.consume_token(2);
    assert_eq!(d_a, d_b, "Θ_F,k=1 serializes the same schedule");
}

#[test]
fn naive_prodigal_agreement_holds_only_on_lucky_schedules() {
    // When both writes land before either scan, the naive protocol gets
    // lucky — the impossibility is about *existence* of bad schedules,
    // not universality. Construct the lucky schedule explicitly.
    let cell = ProdigalCtCell::new(2);
    // Both consume (write+scan) sequentially; second sees both, first saw
    // itself only — diverges. But write-write-scan-scan agrees:
    use blockchain_adt::registers::snapshot_ct::ProdigalCtCell as Cell;
    let lucky = Cell::new(2);
    // Simulate: both writes, then both scans, via consume on a pre-written
    // cell — the first consume's scan already sees both? No: consume is
    // write-then-scan atomic per call; the lucky schedule needs manual
    // staging, which the public API intentionally does not allow tearing.
    // What we *can* assert: picks from identical views agree.
    let v1 = lucky.consume_token(0, 100);
    let v2 = lucky.consume_token(1, 200);
    // v2 ⊇ v1: late consumers see supersets (snapshot monotonicity).
    assert!(v1.iter().all(|x| v2.contains(x)));
    let _ = cell;

    // And the adversarial schedule still diverges for MinValue picks with
    // inverted stakes:
    let cell = ProdigalCtCell::new(2);
    let d_b = naive_propose(&cell, 1, 9, PickRule::MinValue);
    let d_a = naive_propose(&cell, 0, 3, PickRule::MinValue);
    assert_ne!(d_a, d_b);
}

#[test]
fn snapshot_linearizability_under_load() {
    let snap = Arc::new(AtomicSnapshot::new(8, 0u64));
    let seq_vectors: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..8usize {
            let snap = Arc::clone(&snap);
            handles.push(s.spawn(move || {
                for i in 1..=100u64 {
                    snap.update(w, i);
                }
                Vec::new()
            }));
        }
        for _ in 0..4 {
            let snap = Arc::clone(&snap);
            handles.push(s.spawn(move || (0..50).map(|_| snap.scan_with_seqs().1).collect()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for (i, a) in seq_vectors.iter().enumerate() {
        for b in seq_vectors.iter().skip(i + 1) {
            let le = a.iter().zip(b).all(|(x, y)| x <= y);
            let ge = a.iter().zip(b).all(|(x, y)| x >= y);
            assert!(le || ge, "incomparable scans: {a:?} vs {b:?}");
        }
    }
}
