//! Cross-crate integration: criteria checkers against histories produced
//! by the oracle-refined workload runner, including the paper's Figs. 2–4
//! shapes and Theorem 3.1 as an executable property.

use blockchain_adt::core::criteria::{
    check_eventual_consistency, check_strong_consistency, classify, ConsistencyClass,
    ConsistencyParams, LivenessMode,
};
use blockchain_adt::prelude::*;

fn params<'a>(store: &'a BlockStore, cut: Time) -> ConsistencyParams<'a> {
    ConsistencyParams {
        store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    }
}

fn workload(seed: u64, k: Option<u32>) -> blockchain_adt::oracle::WorkloadOutput {
    let merits = Merits::uniform(4);
    let oracle = match k {
        Some(k) => ThetaOracle::frugal(k, merits, 2.0, seed),
        None => ThetaOracle::prodigal(merits, 2.0, seed),
    };
    run_workload(
        oracle,
        &WorkloadConfig {
            processes: 4,
            steps: 300,
            append_prob: 0.3,
            read_prob: 0.2,
            max_latency: 5,
            seed,
        },
    )
}

/// Theorem 3.1, executable: every history satisfying SC satisfies EC, and
/// there exist EC histories that do not satisfy SC.
#[test]
fn theorem_3_1_sc_strictly_inside_ec() {
    let mut ec_without_sc = 0;
    for seed in 0..20u64 {
        for k in [Some(1u32), Some(2), None] {
            let out = workload(seed, k);
            let p = params(&out.store, out.suggested_cut);
            let sc = check_strong_consistency(&out.history, &p).holds();
            let ec = check_eventual_consistency(&out.history, &p).holds();
            if sc {
                assert!(ec, "seed {seed}, k {k:?}: SC history must satisfy EC");
            }
            if ec && !sc {
                ec_without_sc += 1;
            }
        }
    }
    assert!(
        ec_without_sc > 0,
        "the inclusion is strict: some run must be EC∖SC"
    );
}

/// Theorem 3.2 at workload scale: fork degrees never exceed k.
#[test]
fn theorem_3_2_fork_coherence_across_workloads() {
    for seed in 0..10u64 {
        for k in [1u32, 2, 3, 5] {
            let out = workload(seed, Some(k));
            assert!(
                out.max_fork_degree <= k as usize,
                "seed {seed}: degree {} > k {k}",
                out.max_fork_degree
            );
        }
    }
}

/// Theorems 3.3/3.4 empirically: histories generated under a stricter
/// oracle classify at least as strongly as under a looser one.
#[test]
fn hierarchy_inclusions_empirical() {
    for seed in 0..10u64 {
        let k1 = workload(seed, Some(1));
        let k2 = workload(seed, Some(2));
        let p1 = params(&k1.store, k1.suggested_cut);
        let p2 = params(&k2.store, k2.suggested_cut);
        let c1 = classify(&k1.history, &p1);
        let c2 = classify(&k2.history, &p2);
        assert!(
            c1 >= c2,
            "seed {seed}: k=1 classified {c1}, k=2 classified {c2}"
        );
        assert_eq!(c1, ConsistencyClass::Strong, "k=1 workloads are SC");
        assert!(c2 >= ConsistencyClass::Eventual, "shared tree converges");
    }
}

/// The purged-history operator: Ĥ never contains failed appends, and
/// purging preserves the consistency verdicts (failed appends carry no
/// reads).
#[test]
fn purging_preserves_verdicts() {
    for seed in 0..5u64 {
        let out = workload(seed, Some(1));
        let purged = purge_unsuccessful(&out.raw_history);
        assert_eq!(purged.append_count(), out.history.append_count());
        let p = params(&out.store, out.suggested_cut);
        assert_eq!(
            check_strong_consistency(&out.history, &p).holds(),
            check_strong_consistency(&purged, &p).holds()
        );
    }
}

/// All generated histories are structurally well-formed.
#[test]
fn workload_histories_are_well_formed() {
    for seed in 0..10u64 {
        for k in [Some(1u32), None] {
            let out = workload(seed, k);
            assert!(
                out.raw_history.validate().is_empty(),
                "seed {seed}, k {k:?}: {:?}",
                out.raw_history.validate()
            );
        }
    }
}

/// The two Strong-Prefix checkers agree on every generated history
/// (ablation A3's correctness side).
#[test]
fn strong_prefix_checkers_agree() {
    use blockchain_adt::core::criteria::strong_prefix;
    for seed in 0..15u64 {
        for k in [Some(1u32), Some(3), None] {
            let out = workload(seed, k);
            assert_eq!(
                strong_prefix::check(&out.history).holds,
                strong_prefix::check_naive(&out.history).holds,
                "seed {seed}, k {k:?}"
            );
        }
    }
}
