//! A consortium/permissioned ledger scenario (the paper's §5.6–5.7
//! mappings): a fixed membership orders transactions through consensus —
//! the frugal k = 1 oracle — yielding a forkless, strongly consistent
//! chain, contrasted against the same workload on a prodigal oracle.
//!
//! ```sh
//! cargo run --release --example permissioned_ledger
//! ```

use blockchain_adt::core::block::Payload;
use blockchain_adt::prelude::*;
use blockchain_adt::protocols::hyperledger::{run as run_fabric, FabricConfig};
use blockchain_adt::protocols::redbelly::{run as run_redbelly, RedBellyConfig};

fn main() {
    println!("=== permissioned ledgers (Red Belly §5.6, Hyperledger Fabric §5.7) ===\n");

    // ── Red Belly: leaderless consortium consensus ───────────────────────
    let rb_cfg = RedBellyConfig {
        n: 8,
        members: vec![0, 1, 2, 3],
        seed: 0x5EC2E7,
        ..Default::default()
    };
    let rb = run_redbelly(&rb_cfg);
    println!(
        "Red Belly: {} members / {} readers",
        rb_cfg.members.len(),
        rb_cfg.n - rb_cfg.members.len()
    );
    println!("  blocks committed : {}", rb.blocks_minted);
    println!(
        "  max fork degree  : {} (TrivialProjection would panic on 2)",
        rb.max_fork_degree
    );
    println!("  classification   : {}", rb.consistency_class());
    println!("  converged        : {}\n", rb.converged());

    // ── Hyperledger Fabric: execute → order → commit ────────────────────
    let fb_cfg = FabricConfig {
        n: 8,
        members: vec![0, 1, 2, 3],
        max_txs: 10,
        max_age: 5,
        seed: 0xFAB,
        ..Default::default()
    };
    let fb = run_fabric(&fb_cfg);
    println!(
        "Hyperledger Fabric: orderer p0, stop conditions max_txs={} / max_age={}",
        fb_cfg.max_txs, fb_cfg.max_age
    );
    println!("  blocks committed : {}", fb.blocks_minted);
    let sizes: Vec<usize> = fb
        .store
        .ids()
        .skip(1)
        .map(|b| match &fb.store.get(b).payload {
            Payload::Transactions(txs) => txs.len(),
            _ => 0,
        })
        .collect();
    let total: usize = sizes.iter().sum();
    println!(
        "  batch sizes      : min {} / max {} / {} txs total",
        sizes.iter().min().unwrap_or(&0),
        sizes.iter().max().unwrap_or(&0),
        total
    );
    println!("  classification   : {}", fb.consistency_class());
    println!("  converged        : {}\n", fb.converged());

    // ── The contrast: same consortium, but a fork-permitting oracle ─────
    // Strip the consensus away (Θ_P instead of Θ_F,k=1) and the guarantee
    // drops out of SC exactly as Thm. 4.8 predicts.
    let out = theorem_4_8(KBound::Infinite, 0x5EC);
    let (sc, ec) = out.consistency();
    println!("same topology, prodigal oracle (Thm 4.8 schedule):");
    println!(
        "  Strong Consistency  : {}",
        if sc.holds() { "holds" } else { "VIOLATED" }
    );
    println!(
        "  Eventual Consistency: {}",
        if ec.holds() { "holds" } else { "VIOLATED" }
    );
    let out = theorem_4_8(KBound::Finite(1), 0x5EC);
    let (sc, _) = out.consistency();
    println!("back on Θ_F,k=1:");
    println!(
        "  Strong Consistency  : {}",
        if sc.holds() { "holds" } else { "VIOLATED" }
    );
}
