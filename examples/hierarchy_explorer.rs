//! Walks the refinement hierarchy of Figs. 8 and 14: prints the lattice,
//! samples history sets per refinement, verifies the inclusion theorems
//! empirically, and re-runs the message-passing impossibility drivers.
//!
//! ```sh
//! cargo run --release --example hierarchy_explorer
//! ```

use blockchain_adt::core::criteria::{
    check_eventual_consistency, check_strong_consistency, ConsistencyParams, CriterionKind,
    LivenessMode,
};
use blockchain_adt::core::hierarchy::{figure8_edges, figure_nodes, RefinementClass};
use blockchain_adt::prelude::*;

fn main() {
    println!("=== the R(BT-ADT, Θ) hierarchy (Figs. 8 & 14) ===\n");

    println!("nodes:");
    for node in figure_nodes(2) {
        let mp = if node.message_passing_implementable() {
            "implementable in message passing"
        } else {
            "IMPOSSIBLE in message passing (Thm 4.8)"
        };
        println!("  {:<30} {}", node.label(), mp);
    }

    println!("\ninclusion edges:");
    for e in figure8_edges(2) {
        println!("  {} ⊆ {}   [{}]", e.from, e.to, e.justification);
    }

    // ── Empirical inclusion sampling ─────────────────────────────────────
    // Generate workload histories per oracle and check which criteria each
    // satisfies; tally the classes.
    println!("\nsampling Ĥ(R(BT-ADT, Θ)) over 12 seeds each:");
    let cfg = WorkloadConfig {
        processes: 4,
        steps: 250,
        append_prob: 0.3,
        read_prob: 0.2,
        max_latency: 5,
        seed: 0,
    };
    for (label, k) in [
        ("Θ_F,k=1", Some(1u32)),
        ("Θ_F,k=2", Some(2)),
        ("Θ_P   ", None),
    ] {
        let mut sc_count = 0;
        let mut ec_count = 0;
        for seed in 0..12u64 {
            let merits = Merits::uniform(cfg.processes as usize);
            let oracle = match k {
                Some(k) => ThetaOracle::frugal(k, merits, 2.0, seed),
                None => ThetaOracle::prodigal(merits, 2.0, seed),
            };
            let out = run_workload(
                oracle,
                &WorkloadConfig {
                    seed,
                    ..cfg.clone()
                },
            );
            let params = ConsistencyParams {
                store: &out.store,
                predicate: &AcceptAll,
                score: &LengthScore,
                liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
            };
            if check_strong_consistency(&out.history, &params).holds() {
                sc_count += 1;
            }
            if check_eventual_consistency(&out.history, &params).holds() {
                ec_count += 1;
            }
        }
        println!("  {label}: SC on {sc_count:>2}/12 runs, EC on {ec_count:>2}/12 runs");
    }
    println!("  (Thm 3.1 empirically: every SC run is an EC run; k=1 forces SC)");

    // ── The impossibility frontier (Fig. 14) ─────────────────────────────
    println!("\nmessage-passing frontier (Thm 4.8 schedules):");
    for (label, k) in [
        ("Θ_F,k=1", KBound::Finite(1)),
        ("Θ_F,k=2", KBound::Finite(2)),
        ("Θ_P   ", KBound::Infinite),
    ] {
        let out = theorem_4_8(k, 42);
        let (sc, ec) = out.consistency();
        println!(
            "  {label}: Strong Prefix {}  |  Eventual Consistency {}",
            if sc.strong_prefix.as_ref().map(|v| v.holds).unwrap_or(true) {
                "preserved"
            } else {
                "VIOLATED "
            },
            if ec.holds() { "holds" } else { "violated" }
        );
    }

    // ── Necessity results ────────────────────────────────────────────────
    println!("\nnecessity of Update Agreement / LRC (Lemmas 4.4–4.5, Thms 4.6–4.7):");
    let out = lemma_4_4(7);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let (_, ec) = out.consistency();
    println!(
        "  drop R1 (never send):        UA {} → EC {}",
        if ua.holds() { "holds" } else { "violated" },
        if ec.holds() { "holds" } else { "violated" }
    );
    let out = lemma_4_5(7);
    let lrc = check_lrc(&out.trace, &out.correct);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let (_, ec) = out.consistency();
    println!(
        "  drop one channel (0→2):      LRC {} → UA {} → EC {}",
        if lrc.holds() { "holds" } else { "violated" },
        if ua.holds() { "holds" } else { "violated" },
        if ec.holds() { "holds" } else { "violated" }
    );
    let out = update_agreement_positive(7);
    let lrc = check_lrc(&out.trace, &out.correct);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let (_, ec) = out.consistency();
    println!(
        "  gossip echo (full LRC):      LRC {} → UA {} → EC {}",
        if lrc.holds() { "holds" } else { "violated" },
        if ua.holds() { "holds" } else { "violated" },
        if ec.holds() { "holds" } else { "violated" }
    );

    // A cross-check that the static lattice agrees with Fig. 14's greying.
    let sc_p = RefinementClass::new(
        CriterionKind::Strong,
        blockchain_adt::core::hierarchy::OracleModel::Prodigal,
    );
    assert!(!sc_p.message_passing_implementable());
    println!("\ndone.");
}
