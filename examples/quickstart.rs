//! Quickstart: the BlockTree ADT, token oracles, and consistency checking
//! in one sitting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blockchain_adt::prelude::*;

fn main() {
    println!("=== blockchain-adt quickstart ===\n");

    // ── 1. The bare BlockTree ADT (Def. 3.1) ────────────────────────────
    // A tree of blocks with a selection function f (longest chain) and a
    // validity predicate P (no double spends).
    let mut bt = BlockTree::new(LongestChain, NoDoubleSpend);
    let ok = bt.append(
        CandidateBlock::simple(ProcessId(0), 1)
            .with_payload(Payload::Transactions(vec![Tx::new(1, 0, 1, 50)])),
    );
    println!("append(b1 spending tx#1)      -> {ok}");
    let dup = bt.append(
        CandidateBlock::simple(ProcessId(0), 2)
            .with_payload(Payload::Transactions(vec![Tx::new(1, 0, 2, 50)])),
    );
    println!("append(b2 re-spending tx#1)   -> {dup}  (rejected by P)");
    println!("read() = {}\n", bt.read());

    // ── 2. The refined append R(BT-ADT, Θ) (Def. 3.7) ───────────────────
    // Appends now go through a token oracle. With the frugal k = 1 oracle
    // at most one block can ever chain under each parent: no forks.
    let oracle = ThetaOracle::frugal(1, Merits::uniform(3), 3.0, 42);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    for p in 0..3u32 {
        let out = tree.append(ProcessId(p), Payload::Opaque(p as u64));
        println!("process p{p} refined append    -> {out:?}");
    }
    println!("read() = {}", tree.read(ProcessId(0)));
    println!(
        "k-fork coherence (Thm 3.2)    -> {}\n",
        tree.oracle().fork_coherent()
    );

    // ── 3. Forks under the prodigal oracle ──────────────────────────────
    // Two overlapping appends captured the same parent; Θ_P admits both.
    let oracle = ThetaOracle::prodigal(Merits::uniform(2), 2.0, 7);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    let t0 = tree.now();
    tree.append_at(ProcessId(0), 0, BlockId::GENESIS, Payload::Empty, t0);
    tree.append_at(ProcessId(1), 1, BlockId::GENESIS, Payload::Empty, t0);
    println!(
        "Θ_P overlapping appends       -> {} children under b0 (a fork)",
        tree.store().children(BlockId::GENESIS).len()
    );

    // ── 4. Checking consistency criteria on a recorded history ──────────
    let cfg = WorkloadConfig::default();
    let out = run_workload(ThetaOracle::prodigal(Merits::uniform(4), 2.0, 11), &cfg);
    let params = ConsistencyParams {
        store: &out.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
    };
    let sc = check_strong_consistency(&out.history, &params);
    let ec = check_eventual_consistency(&out.history, &params);
    println!(
        "\nworkload under Θ_P: {} appends, {} fork points",
        out.successful_appends, out.fork_points
    );
    println!("{sc}");
    println!("{ec}");

    // ── 5. The hierarchy (Fig. 8) ────────────────────────────────────────
    println!("refinement hierarchy edges (Fig. 8):");
    for e in blockchain_adt::core::hierarchy::figure8_edges(2) {
        println!("  {} ⊆ {}   [{}]", e.from, e.to, e.justification);
    }
}
