//! A permissionless cryptocurrency scenario (the paper's §5.1 Bitcoin
//! mapping): eight miners with skewed hash power race proof-of-work over a
//! synchronous network, forks appear and heal, and the recorded history is
//! classified against the consistency hierarchy.
//!
//! ```sh
//! cargo run --release --example cryptocurrency
//! ```

use blockchain_adt::core::criteria::{
    check_eventual_consistency, check_strong_consistency, ConsistencyParams, LivenessMode,
};
use blockchain_adt::prelude::*;
use blockchain_adt::protocols::bitcoin::{run, BitcoinConfig};

fn main() {
    println!("=== permissionless cryptocurrency (Bitcoin model, §5.1) ===\n");

    // A whale controls 40% of the hash power; seven small miners share
    // the rest.
    let mut hash_power = vec![1.0; 8];
    hash_power[0] = 4.66;
    let cfg = BitcoinConfig {
        n: 8,
        hash_power: Some(hash_power),
        rate: 0.8,
        delta: 3,
        seed: 0xC0FFEE,
        ..Default::default()
    };
    println!(
        "miners: 8 (p0 holds ~40% hash power), PoW rate {} blocks/tick, δ = {} ticks\n",
        cfg.rate, cfg.delta
    );

    let run = run(&cfg);

    // Production share.
    let mut produced = [0usize; 8];
    for b in run.store.ids().skip(1) {
        produced[run.store.get(b).producer.index()] += 1;
    }
    println!("blocks minted: {}", run.blocks_minted);
    for (i, c) in produced.iter().enumerate() {
        let bar = "█".repeat(*c / 2);
        println!("  p{i}: {c:>4} {bar}");
    }

    // Fork anatomy.
    let fork_points = run
        .store
        .ids()
        .filter(|&b| run.store.children(b).len() >= 2)
        .count();
    println!(
        "\nfork points: {fork_points} (max degree {}) — Θ_P admits concurrent children",
        run.max_fork_degree
    );

    // Transaction throughput on the winning chain.
    let chain = &run.final_chains[0];
    let txs: usize = chain
        .ids()
        .iter()
        .map(|&b| run.store.get(b).payload.tx_count())
        .sum();
    println!(
        "final chain: {} blocks, {txs} transactions settled, {} orphaned blocks",
        chain.len() - 1,
        run.blocks_minted - (chain.len() - 1)
    );

    // Consistency classification.
    let params = ConsistencyParams {
        store: &run.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(run.cut),
    };
    let sc = check_strong_consistency(&run.trace.history, &params);
    let ec = check_eventual_consistency(&run.trace.history, &params);
    println!("\n{sc}");
    println!("{ec}");
    println!(
        "classification: {} — the paper's R(BT-ADT_EC, Θ_P) row of Table 1",
        run.consistency_class()
    );
    println!(
        "all correct replicas converged: {}",
        if run.converged() { "yes" } else { "no" }
    );
}
