//! Protocol A live (Fig. 11 / Thm. 4.2): wait-free consensus built from
//! the frugal k = 1 token oracle, run on real threads — plus the negative
//! contrast: the prodigal oracle admits agreement-violating schedules
//! (Thm. 4.3).
//!
//! ```sh
//! cargo run --release --example consensus_from_oracle
//! ```

use blockchain_adt::prelude::*;
use blockchain_adt::registers::adversary::{divergent_schedule, PickRule};

fn main() {
    println!("=== consensus from token oracles (§4.1) ===\n");

    // ── Protocol A across thread counts ─────────────────────────────────
    for &n in &[2usize, 4, 8, 16] {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.8, n as u64);
        let consensus = OracleConsensus::new(SharedOracle::new(oracle));
        let report = run_trial(&consensus, n);
        println!(
            "Protocol A, {n:>2} threads: decided {:?}  [termination {} | agreement {} | validity {}]",
            report.decided(),
            ok(report.termination()),
            ok(report.agreement()),
            ok(report.validity()),
        );
        assert!(report.agreement() && report.validity());
    }

    // ── The CT → CAS reduction (Fig. 10 / Thm. 4.1) ─────────────────────
    println!("\nCAS from consumeToken (Fig. 10):");
    let cell = CasFromCt::new();
    let r1 = cell.compare_and_swap_from_empty(7);
    let r2 = cell.compare_and_swap_from_empty(9);
    println!("  cas({{}}, 7) -> {r1:>2}   (EMPTY: installed)");
    println!("  cas({{}}, 9) -> {r2:>2}   (incumbent returned)");

    // ── CAS-based consensus (the Herlihy route) ──────────────────────────
    let cas = CasConsensus::new();
    let report = run_trial(&cas, 8);
    println!(
        "\nCAS consensus, 8 threads: decided {:?}  [agreement {}]",
        report.decided(),
        ok(report.agreement())
    );

    // ── The prodigal oracle cannot arbitrate (Thm. 4.3) ──────────────────
    println!("\nprodigal oracle, naive consensus attempt (min-slot pick):");
    let (a, b) = divergent_schedule(PickRule::MinSlot);
    println!("  process A decided {a}, process B decided {b}  — agreement violated");
    println!("  (Θ_P ≡ atomic snapshot, consensus number 1: Fig. 12 / Thm. 4.3)");

    // The same schedule on the k = 1 cell agrees:
    let k1 = ConsumeTokenCell::new();
    let d_b = k1.consume_token(1);
    let d_a = k1.consume_token(2);
    println!(
        "\nsame schedule on Θ_F,k=1 consumeToken: A decided {d_a}, B decided {d_b} — agreement"
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}
